"""Process-backed shard transport — shards as worker *processes*.

Where the thread transport's "network" is a host memcpy, this transport
pays a real inter-process round-trip per task (pickle over a duplex
pipe), which is what lets the pipelined trainer's prefetch hide a
genuine communication cost — the ROADMAP's step from modelled Section-6
clusters toward executors with an actual interconnect.

Architecture
------------
- **Shared-memory arrays.**  The full center matrix and (optionally) the
  full weight matrix live in :mod:`multiprocessing.shared_memory`
  segments created by the parent.  Each child attaches the segments and
  takes its shard's contiguous row slice as a zero-copy NumPy view, so
  startup ships no array payloads and the parent keeps host-visible
  views of every shard's rows.
- **One RPC channel per shard.**  Each shard gets a child process
  running a recv→execute→send loop and, in the parent, a dedicated
  single-thread pool that performs the send/recv round-trip.  In-flight
  tasks queue in the parent thread's FIFO (never in the pipe), so the
  per-worker FIFO ordering contract of
  :class:`~repro.shard.transport.base.ShardTransport` holds and
  ``map_async`` never blocks on pipe capacity.  Tasks and results are
  pickled: submitted callables must be module-level functions (all the
  library's tasks are).
- **Asynchronous mirror-back.**  Because the weight rows live in shared
  memory, :meth:`ProcessTransport.mirror_rows` is a direct host write by
  the parent — no task, no IPC, no barrier.  It is sound because only
  weight-dependent *contract* tasks read the rows, any such task is
  queued after the write returns, and the task's send/recv provides the
  inter-process happens-before edge.  (Block *formation* tasks may be in
  flight during the write; they never read weights.)
- **Failure containment.**  A worker that dies mid-task (killed, OOM,
  crash) surfaces as a :class:`~repro.exceptions.ShardError` naming the
  shard — never a hang — and the transport stays closeable: ``close()``
  terminates stragglers and always unlinks the shared-memory segments
  (a ``weakref.finalize`` backstops segment cleanup at interpreter
  exit).

Availability: requires :mod:`multiprocessing.shared_memory` and a
``fork`` start method (the default here; ``spawn`` is accepted via
``start_method=`` for platforms that need it, with the stricter
requirement that every submitted task live in an importable module).
Use :func:`process_transport_available` to gate tests.

This architecture is designed for reuse: a subclass can give each child
a non-NumPy backend (``_WorkerSpec.backend_spec``) and run module-level
``bootstrap``/``teardown`` hooks around the child's serve loop — which
is exactly how
:class:`~repro.shard.transport.torchdist.TorchDistributedTransport`
turns these workers into ``torch.distributed`` ranks.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import weakref
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    current_precision,
    resolve_backend,
)
from repro.exceptions import ConfigurationError, ShardError
from repro.observe.tracer import span, tracing_active
from repro.shard.plan import ShardPlan
from repro.shard.transport.base import ShardTransport, ShardWorker

__all__ = [
    "ProcessShardExecutor",
    "ProcessTransport",
    "process_transport_available",
]

_SHUTDOWN = None  # sentinel message ending a worker's loop


def process_transport_available() -> bool:
    """True when this platform supports the process transport's default
    configuration: POSIX shared memory plus a fork-safe start method
    (fork keeps arbitrary module-level task functions unpicklable-import
    free and is what the test suite exercises)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


@dataclass(frozen=True)
class _SegmentSpec:
    """How a child attaches one shared array: segment name + layout."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a child needs to build its :class:`ShardWorker`."""

    shard_id: int
    lo: int
    hi: int
    centers: _SegmentSpec
    weights: _SegmentSpec | None
    #: True for start methods where the child runs its *own* resource
    #: tracker (spawn): the attach below registers the segment there, and
    #: without an unregister that tracker would re-unlink the parent's
    #: segment at child exit.  Under fork the tracker is shared with the
    #: parent (its registry is a set, so the duplicate register from the
    #: attach is harmless) and unregistering would over-remove.
    unregister_segments: bool
    #: Backend spec the child resolves for its worker (``None`` → a fresh
    #: :class:`~repro.backend.NumpyBackend` instance).  Always a string
    #: or ``None`` — backend *instances* never cross the pickle boundary.
    backend_spec: str | None = None
    #: Optional module-level hooks run in the child around the serve
    #: loop: ``bootstrap(spec)`` after the shared arrays are attached and
    #: before the worker is built (a ``torch.distributed`` transport
    #: joins its process group here), ``teardown(spec)`` on loop exit
    #: (destroy the process group).  Module-level so they pickle by
    #: reference under every start method.
    bootstrap: Callable[["_WorkerSpec"], None] | None = None
    teardown: Callable[["_WorkerSpec"], None] | None = None
    #: Free-form extras for the hooks (world size, rendezvous file, ...).
    options: dict[str, Any] = field(default_factory=dict)


def _attach_segment(
    spec: _SegmentSpec, unregister: bool
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    shm = shared_memory.SharedMemory(name=spec.shm_name)
    if unregister:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker API drift
            pass
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return shm, view


def _dump_exception(exc: BaseException) -> tuple[str, Any]:
    """Best-effort picklable form of a worker-side exception."""
    try:
        payload = pickle.dumps(exc)
        pickle.loads(payload)  # some exceptions pickle but fail to rebuild
        return "pickled", payload
    except Exception:
        return "text", "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )


def _worker_main(spec: _WorkerSpec, conn: Any) -> None:
    """Child process entry point: attach shared arrays, serve tasks."""
    segments: list[shared_memory.SharedMemory] = []
    try:
        # A forked child inherits the forking thread's pooled block
        # workspace (buffers *and* high-water mark); this worker's scratch
        # accounting must start from zero.
        from repro.kernels.ops import block_workspace

        block_workspace().reset()
        shm_c, centers_all = _attach_segment(
            spec.centers, spec.unregister_segments
        )
        segments.append(shm_c)
        weights = None
        if spec.weights is not None:
            shm_w, weights_all = _attach_segment(
                spec.weights, spec.unregister_segments
            )
            segments.append(shm_w)
            weights = weights_all[spec.lo : spec.hi]
        if spec.bootstrap is not None:
            try:
                spec.bootstrap(spec)
            except BaseException:
                # Startup failures surface to the parent as a dead
                # worker (EOF on the pipe); leave the cause on stderr.
                traceback.print_exc()
                raise
        backend = (
            NumpyBackend()
            if spec.backend_spec is None
            else resolve_backend(spec.backend_spec)
        )
        worker = ShardWorker(
            spec.shard_id,
            backend,
            centers_all[spec.lo : spec.hi],
            weights,
        )
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is _SHUTDOWN:
                break
            fn, args, kwargs, precision, trace = msg
            try:
                # ``(result, delta)`` untraced, ``(result, delta, spans)``
                # when the parent had tracing enabled at submit time; the
                # stats tuple always rides last, so the parent parses the
                # reply the same way in both shapes.
                metered = worker.run_metered(
                    fn, args, kwargs, precision, trace
                )
                reply = (
                    "ok",
                    *metered,
                    (worker.meter.as_dict(), worker.workspace_peak),
                )
            except (KeyboardInterrupt, SystemExit):
                # An interrupt aimed at the process group must end the
                # serve loop, not be relayed as a task failure — otherwise
                # Ctrl-C leaves children behind, still serving.  The
                # ``finally`` below still runs teardown and segment
                # cleanup; the parent sees EOF and raises ShardError.
                raise
            except BaseException as exc:  # noqa: BLE001 - relayed to parent
                reply = (
                    "err",
                    _dump_exception(exc),
                    (worker.meter.as_dict(), worker.workspace_peak),
                )
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        if spec.teardown is not None:
            try:
                spec.teardown(spec)
            except Exception:  # pragma: no cover - best-effort cleanup
                traceback.print_exc()
        try:
            conn.close()
        except Exception:
            pass
        # Views must be dropped before the segments can be closed; any of
        # these names may be unbound when startup itself failed.
        try:
            del weights
        except NameError:
            pass
        try:
            del worker
        except NameError:
            pass
        try:
            del centers_all
        except NameError:
            pass
        try:
            del weights_all
        except NameError:
            pass
        for shm in segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - exported view leak
                pass


class ProcessShardExecutor:
    """Parent-side handle of one worker process.

    Exposes the same executor surface as the thread transport's
    :class:`~repro.shard.transport.thread.ShardExecutor` — ``submit`` /
    ``submit_metered`` with FIFO ordering, geometry and accounting
    attributes — but the shard's arithmetic runs in the child.
    ``centers`` and ``weights`` here are the parent's shared-memory views
    of the child's rows (writes to ``weights`` are how the transport
    mirrors updates); ``workspace_peak`` and the op-count snapshot are
    refreshed from every task reply.
    """

    def __init__(
        self,
        shard_id: int,
        process: Any,
        conn: Any,
        centers: np.ndarray,
        weights: np.ndarray | None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.process = process
        self.backend: ArrayBackend = NumpyBackend()
        self.centers = centers
        self.weights = weights
        #: The child holds shared rows, not a view of the caller's weight
        #: array — mirror-back is a (direct) write, not the identity.
        self.weights_is_view = False
        self.workspace_peak = 0
        #: Completed RPC round-trips (task replies received).  The
        #: conformance suite uses this to assert that mirror-back does
        #: *not* ride the task channel.
        self.rpc_count = 0
        self._op_counts: dict[str, int] = {}
        self._conn = conn
        self._dead: str | None = None
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-rpc-{shard_id}"
        )

    # ------------------------------------------------------------- geometry
    @property
    def n_centers(self) -> int:
        return self.centers.shape[0]

    @property
    def resident_scalars(self) -> int:
        scalars = self.centers.shape[0] * self.centers.shape[1]
        if self.weights is not None:
            w = self.weights
            scalars += w.shape[0] * (w.shape[1] if w.ndim == 2 else 1)
        return int(scalars)

    # ------------------------------------------------------------ execution
    def _require_open(self) -> ThreadPoolExecutor:
        if self._pool is None:
            raise ShardError(
                f"shard {self.shard_id} executor is closed and can no "
                "longer serve tasks"
            )
        return self._pool

    def _rpc_metered(
        self,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        precision: np.dtype | None,
        trace: bool = False,
    ) -> tuple[Any, ...]:
        """One task round-trip; runs on this executor's dedicated parent
        thread, so the pipe carries at most one in-flight task and FIFO
        order is the thread pool's queue order.  Returns ``(result,
        op_delta)``, or ``(result, op_delta, spans)`` when ``trace`` —
        the worker-side span payloads ride the same reply as the delta,
        never an extra RPC."""
        if self._dead is not None:
            raise ShardError(
                f"shard {self.shard_id} worker is unavailable: {self._dead}"
            )
        try:
            self._conn.send((fn, args, kwargs, precision, trace))
            reply = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._dead = (
                f"worker process died (exit code {self.process.exitcode})"
            )
            raise ShardError(f"shard {self.shard_id} {self._dead}") from exc
        kind = reply[0]
        stats = reply[-1]
        self._op_counts, self.workspace_peak = stats
        self.rpc_count += 1
        if kind == "err":
            form, body = reply[1]
            if form == "pickled":
                raise pickle.loads(body)
            raise ShardError(
                f"shard {self.shard_id} task failed in worker:\n{body}"
            )
        # ("ok", result, delta[, spans], stats) — everything between the
        # kind tag and the trailing stats is the metered payload.
        return tuple(reply[1:-1])

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Queue ``fn(worker, *args, **kwargs)`` for the child; the
        future resolves to the task's result."""
        pool = self._require_open()
        precision = current_precision()
        return pool.submit(
            lambda: self._rpc_metered(fn, args, kwargs, precision)[0]
        )

    def submit_metered(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        """Like :meth:`submit`, but the future resolves to
        ``(result, op_delta)`` with the delta captured in the child —
        plus the child-side spans when the caller has tracing enabled
        (captured here, next to the ambient precision)."""
        pool = self._require_open()
        precision = current_precision()
        return pool.submit(
            self._rpc_metered, fn, args, kwargs, precision, tracing_active()
        )

    # ------------------------------------------------------------- liveness
    def alive(self) -> bool:
        """Liveness probe: ``True`` while the worker process can serve
        tasks.  Unlike a task submission this never raises — a dead
        worker is *reported* (and latched on the executor so later
        submissions fail fast) instead of surfacing as a first-touch
        :class:`~repro.exceptions.ShardError`."""
        if self._dead is not None or self._pool is None:
            return False
        if not self.process.is_alive():
            self._dead = (
                f"worker process died (exit code {self.process.exitcode})"
            )
            return False
        return True

    # ----------------------------------------------------------- accounting
    def op_counts_snapshot(self) -> dict[str, int]:
        """Child meter totals as of the last completed task reply."""
        return dict(self._op_counts)

    # ------------------------------------------------------------ lifecycle
    def _shutdown_rpc(self) -> None:
        if self._dead is None:
            try:
                self._conn.send(_SHUTDOWN)
            except (OSError, BrokenPipeError):
                pass

    def close(self, timeout: float = 10.0) -> None:
        """Queue an orderly shutdown behind pending tasks, then join
        (terminating the child if it does not exit in time).

        The child is terminated *before* the RPC pool is joined: killing
        it EOFs the pipe, which unblocks any RPC thread stuck in
        ``recv()`` on a wedged worker — otherwise the pool join could
        wait forever on that thread.
        """
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        try:
            pool.submit(self._shutdown_rpc).result(timeout=timeout)
        except Exception:
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        pool.shutdown(wait=True)
        try:
            self._conn.close()
        except Exception:
            pass


def _release_segments(names: Sequence[str]) -> None:
    """Close + unlink shared segments by name (idempotent backstop)."""
    for name in names:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - raced unlink
                pass


class ProcessTransport(ShardTransport):
    """Shard transport running every shard in a dedicated child process
    over shared-memory center/weight blocks (module docstring).

    Parameters
    ----------
    plan:
        The shard plan; one worker process is spawned per shard.
    centers, weights:
        Full host arrays, copied once into shared memory.
    backends:
        Per-shard backend specs.  Only NumPy is supported in workers
        (``None``, ``"numpy"`` or a :class:`~repro.backend.NumpyBackend`
        instance — each child builds its own fresh instance); device
        backends belong to the thread transport or a future NCCL one.
    start_method:
        :mod:`multiprocessing` start method; default ``"fork"`` when
        available, else ``"spawn"``.
    """

    name = "process"

    @classmethod
    def is_available(cls) -> bool:
        return process_transport_available()

    # ------------------------------------------------------ subclass hooks
    def _validate_backends(
        self,
        backends: Sequence[str | ArrayBackend | None] | None,
        plan: ShardPlan,
    ) -> list[str | None]:
        """Normalize per-shard backend specs to pickle-safe strings
        (``None`` → NumPy).  The process transport itself is NumPy-only;
        subclasses with device-capable workers override."""
        for spec in backends or []:
            if spec is None or spec == "numpy" or isinstance(spec, NumpyBackend):
                continue
            raise ConfigurationError(
                "the process transport runs NumPy workers only; got "
                f"backend spec {spec!r} (use transport='thread' for "
                "device backends)"
            )
        return [None] * plan.g

    def _default_start_method(self) -> str:
        return "fork" if process_transport_available() else "spawn"

    def _child_spec(
        self,
        shard_id: int,
        lo: int,
        hi: int,
        centers_spec: _SegmentSpec,
        weights_spec: _SegmentSpec | None,
        start_method: str,
    ) -> _WorkerSpec:
        """The :class:`_WorkerSpec` shipped to one child; subclasses
        extend it (backend specs, bootstrap/teardown hooks) via
        :func:`dataclasses.replace`."""
        return _WorkerSpec(
            shard_id=shard_id,
            lo=lo,
            hi=hi,
            centers=centers_spec,
            weights=weights_spec,
            unregister_segments=start_method != "fork",
            backend_spec=self._backend_specs[shard_id],
        )

    def __init__(
        self,
        plan: ShardPlan,
        centers: np.ndarray,
        weights: np.ndarray | None = None,
        backends: Sequence[str | ArrayBackend | None] | None = None,
        *,
        start_method: str | None = None,
    ) -> None:
        self._backend_specs = self._validate_backends(backends, plan)
        if start_method is None:
            start_method = self._default_start_method()
        ctx = multiprocessing.get_context(start_method)
        self.plan = plan

        # Validate before any shared-memory segment exists: a rejected
        # configuration must not leave an orphaned segment behind.
        centers = np.ascontiguousarray(centers)
        if weights is not None:
            weights = np.ascontiguousarray(weights)
            if weights.shape[0] != plan.n:
                raise ConfigurationError(
                    f"weights has {weights.shape[0]} rows, plan expects "
                    f"{plan.n}"
                )
        self._segments: list[shared_memory.SharedMemory] = []
        self._centers_view: np.ndarray | None = None
        self._weights_view: np.ndarray | None = None
        self.executors: list[ProcessShardExecutor] = []
        try:
            centers_spec, self._centers_view = self._new_segment(centers)
            weights_spec = None
            if weights is not None:
                weights_spec, self._weights_view = self._new_segment(weights)
            self._finalizer = weakref.finalize(
                self,
                _release_segments,
                tuple(shm.name for shm in self._segments),
            )
            for i, (lo, hi) in enumerate(
                zip(plan.bounds, plan.bounds[1:])
            ):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                spec = self._child_spec(
                    i, int(lo), int(hi), centers_spec, weights_spec,
                    start_method,
                )
                proc = ctx.Process(
                    target=_worker_main,
                    args=(spec, child_conn),
                    name=f"repro-shard-{i}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self.executors.append(
                    ProcessShardExecutor(
                        i,
                        proc,
                        parent_conn,
                        self._centers_view[lo:hi],
                        None
                        if self._weights_view is None
                        else self._weights_view[lo:hi],
                    )
                )
        except BaseException:
            self.close()
            raise

    def _new_segment(
        self, source: np.ndarray
    ) -> tuple[_SegmentSpec, np.ndarray]:
        shm = shared_memory.SharedMemory(
            create=True, size=max(int(source.nbytes), 1)
        )
        self._segments.append(shm)
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        view[...] = source
        return (
            _SegmentSpec(
                shm_name=shm.name,
                shape=tuple(source.shape),
                dtype=str(source.dtype),
            ),
            view,
        )

    # -------------------------------------------------------------- weights
    @property
    def needs_mirror(self) -> bool:
        # Weight rows live in shared segments, not in the caller's array:
        # updates must be mirrored — by a direct write, not a task.
        return self._weights_view is not None

    def mirror_rows(
        self, global_idx: np.ndarray, rows: np.ndarray
    ) -> None:
        """Write updated weight rows straight into the shared segment.

        Asynchronous by construction: no task is queued and no barrier
        taken (``rpc_count`` is untouched).  Safe because weight-reading
        tasks are only ever queued *after* this write returns, and the
        queue's send/recv gives the cross-process ordering edge; tasks
        already in flight are block formations, which never read weights.
        """
        self._require_serving()
        if self._weights_view is None:
            raise ConfigurationError("transport holds no weights")
        idx = np.asarray(global_idx)
        with span("mirror", transport=self.name, rows=len(idx), queued=0):
            self._weights_view[idx] = rows

    def gather_weights(self) -> np.ndarray:
        self._require_serving()
        if self._weights_view is None:
            raise ConfigurationError("transport holds no weights")
        with span("gather", transport=self.name, g=self.g):
            return self._weights_view.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        self._require_serving()
        if self._weights_view is None:
            raise ConfigurationError("transport holds no weights")
        weights_np = np.asarray(weights)
        if weights_np.shape != self._weights_view.shape:
            raise ConfigurationError(
                f"weights shape {weights_np.shape} does not match "
                f"sharded weights {self._weights_view.shape}"
            )
        self._weights_view[...] = weights_np

    # ----------------------------------------------------------- accounting
    def op_counts(self) -> dict[str, int]:
        total: dict[str, int] = {}
        for ex in self.executors:
            for category, ops in ex.op_counts_snapshot().items():
                total[category] = total.get(category, 0) + ops
        return total

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        # Latch first: a racing submit must get a clean ShardError, never
        # a direct write into a segment about to be unlinked.
        self._closed = True
        executors = list(getattr(self, "executors", []))
        if len(executors) > 1:
            # Fan the shutdown/join out across executors: each close can
            # wait up to its timeout on a wedged worker, and paying that
            # serially makes closing a g=8 group take up to ~g× one
            # timeout.  Concurrent closes are independent (one process +
            # one RPC pool each), so total close time is bounded by the
            # slowest single executor.
            with ThreadPoolExecutor(
                max_workers=len(executors),
                thread_name_prefix="repro-shard-close",
            ) as pool:
                for f in [pool.submit(ex.close) for ex in executors]:
                    try:
                        f.result()
                    except Exception:  # pragma: no cover - best effort
                        pass
        elif executors:
            executors[0].close()
        # Drop parent views before closing the mappings they alias.
        self._centers_view = None
        self._weights_view = None
        for ex in getattr(self, "executors", []):
            ex.centers = None
            ex.weights = None
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - leaked external view
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        if getattr(self, "_finalizer", None) is not None:
            self._finalizer.detach()
