"""Thread-backed shard transport — shards as in-process worker threads.

Each :class:`ShardExecutor` is a :class:`~repro.shard.transport.base.
ShardWorker` (the shard's arrays, meter and execution scopes) fused with
a dedicated single-thread FIFO pool, so worker-side state and the
caller-side handle are the same object.  The "network" of this transport
is a host memcpy: NumPy shards adopt zero-copy views of the caller's
weight rows (mirror-back is the identity), device-backed shards
(``torch:cuda:<i>``) hold device copies that the transport mirrors with
queued row pushes.  Because every executor runs one FIFO worker thread,
the per-thread :class:`~repro.kernels.ops.BlockWorkspace` high-water
mark *is* the shard's scratch peak, and queued mirrors are ordered
before later-queued contractions with no extra synchronization.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    current_precision,
    resolve_backend,
    to_numpy,
)
from repro.exceptions import ConfigurationError, ShardError
from repro.observe.tracer import tracing_active
from repro.shard.plan import ShardPlan
from repro.shard.transport.base import ShardTransport, ShardWorker

__all__ = ["ShardExecutor", "ThreadTransport"]


class ShardExecutor(ShardWorker):
    """One shard of the thread transport: a :class:`ShardWorker` plus a
    dedicated single-thread FIFO executor.

    Every operation this executor performs is recorded on its private
    meter (worker threads have no ambient meters); each task submitted
    via :meth:`submit_metered` captures its own op-count delta *on the
    worker*, so several tasks may be in flight concurrently (the
    pipelined trainer queues the next block's formation behind the
    current contraction) without their deltas interleaving.
    """

    def __init__(
        self,
        shard_id: int,
        backend: ArrayBackend,
        centers: Any,
        weights: Any | None = None,
    ) -> None:
        super().__init__(shard_id, backend, centers, weights)
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{shard_id}"
        )

    # ------------------------------------------------------------ execution
    def _require_open(self) -> ThreadPoolExecutor:
        if self._pool is None:
            raise ShardError(
                f"shard {self.shard_id} executor is closed and can no "
                "longer serve tasks"
            )
        return self._pool

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Run ``fn(self, *args, **kwargs)`` on this shard's worker
        thread under its backend scope, the caller's explicit precision
        (if any) and this shard's private meter; returns the future."""
        pool = self._require_open()
        precision = current_precision()
        return pool.submit(self.run, fn, args, kwargs, precision)

    def submit_metered(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        """Like :meth:`submit`, but the future resolves to
        ``(result, op_delta)`` — see :meth:`ShardWorker.run_metered`.
        The ambient tracing flag is captured here, next to the ambient
        precision: a task submitted under an active tracer resolves to
        ``(result, op_delta, spans)`` instead."""
        pool = self._require_open()
        precision = current_precision()
        return pool.submit(
            self.run_metered, fn, args, kwargs, precision, tracing_active()
        )

    def pull_rows(self, local_idx: np.ndarray) -> np.ndarray:
        """Host copy of the given weight rows (mirror-back path for
        executors whose weights are device copies rather than views)."""
        if self.weights is None:
            raise ConfigurationError(f"shard {self.shard_id} holds no weights")
        return to_numpy(self.weights[local_idx])

    def alive(self) -> bool:
        """Liveness probe: an in-process worker thread cannot die
        independently of the caller, so a thread executor is alive
        exactly until it is closed."""
        return self._pool is not None

    def close(self) -> None:
        """Reset this shard's workspace scratch and join its worker."""
        if self._pool is None:
            return
        try:
            self._pool.submit(self.drain_workspace).result()
        finally:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadTransport(ShardTransport):
    """Shard transport running every shard on an in-process worker thread.

    Parameters
    ----------
    plan:
        The shard plan; one executor is built per shard.
    centers, weights:
        Full host arrays, sliced per the plan.  NumPy-backed shards adopt
        weight slices as zero-copy views.
    backends:
        One backend spec (``None`` → a fresh
        :class:`~repro.backend.NumpyBackend` instance,
        ``"torch:cuda:0"``, an :class:`~repro.backend.ArrayBackend`
        instance, ...) per shard.
    """

    name = "thread"

    @classmethod
    def trainer_interconnect(cls, backends=None):
        """In-process threads share one memory system; the sharded
        trainer's default aggregate device keeps the generic
        NVLink-class interconnect rather than the calibration-scale
        ``"thread"`` link model (which exists for the validation
        harness's modelled-vs-measured loop)."""
        return None

    def __init__(
        self,
        plan: ShardPlan,
        centers: np.ndarray,
        weights: np.ndarray | None = None,
        backends: Sequence[str | ArrayBackend | None] | None = None,
    ) -> None:
        specs = list(backends) if backends is not None else [None] * plan.g
        if len(specs) != plan.g:
            raise ConfigurationError(
                f"plan has {plan.g} shards but {len(specs)} backend specs given"
            )
        self.plan = plan
        self.executors = [
            ShardExecutor(
                i,
                NumpyBackend() if spec is None else resolve_backend(spec),
                centers[sl],
                None if weights is None else weights[sl],
            )
            for i, (spec, sl) in enumerate(zip(specs, plan.slices))
        ]

    # -------------------------------------------------------------- weights
    def set_weights(self, weights: np.ndarray) -> None:
        self._require_serving()
        weights_np = np.asarray(weights)
        if weights_np.shape[0] != self.plan.n:
            raise ConfigurationError(
                f"weights has {weights_np.shape[0]} rows, plan expects "
                f"{self.plan.n}"
            )
        for ex, sl in zip(self.executors, self.plan.slices):
            if ex.weights_is_view and isinstance(ex.weights, np.ndarray):
                ex.weights[...] = weights_np[sl]
            else:
                ex.weights = ex.backend.asarray(weights_np[sl])
                ex.weights_is_view = False

    # ----------------------------------------------------------- accounting
    def op_counts(self) -> dict[str, int]:
        total: dict[str, int] = {}
        for ex in self.executors:
            for category, ops in ex.meter.as_dict().items():
                total[category] = total.get(category, 0) + ops
        return total

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        self._closed = True
        for ex in self.executors:
            ex.close()
