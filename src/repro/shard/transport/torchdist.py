"""``torch.distributed`` shard transport — shards as process-group ranks.

The ROADMAP's "next transport step": the same
:class:`~repro.shard.transport.base.ShardTransport` contract as the
thread and process transports, but with the collective executed by a
*real* ``torch.distributed`` all-reduce on the workers — **gloo** over
CPU tensors (runs anywhere torch is installed, which is what makes this
transport exercisable by the CI conformance matrix), **NCCL** over CUDA
tensors when CUDA device backends are requested.  This is the
MLSYSIM-style step that lets the cluster cost model's gloo/NCCL link
entries (:data:`repro.device.cluster.TRANSPORT_INTERCONNECTS`) be
validated against measured collective timings instead of only simulated
ones.

Architecture
------------
Everything host-side is inherited from
:class:`~repro.shard.transport.process.ProcessTransport`: one worker
process per shard, shared-memory center/weight segments, pickle-over-pipe
RPC with parent-side FIFO threads (so ``map_async`` never blocks), direct
shared-memory mirror-back for NumPy workers, ``ShardError`` on worker
death, segments always unlinked.  This transport adds:

- **Process group membership.**  Each child's bootstrap joins a
  ``torch.distributed`` process group (rank = shard id) rendezvoused
  through a file store in a parent-owned temp directory; the serve-loop
  teardown calls ``destroy_process_group``.  ``GLOO_SOCKET_IFNAME``
  defaults to the loopback interface — all ranks live on one host.
- **Real collective.**  :meth:`TorchDistributedTransport.allreduce`
  ships each shard's partial back to its rank and runs one
  ``dist.all_reduce(SUM)`` across the group; rank 0 returns the reduced
  array and the *caller* records the shape-derived ``(g - 1) * payload``
  operations under the existing ``"allreduce"`` category — exactly where
  (and how much) the host-side
  :func:`~repro.shard.transport.base.allreduce_sum` records, so shard
  meters hold compute only on every transport.  A single rank
  short-circuits — no task, no ops — matching the cost model's ``g = 1``
  case.  At ``g <= 2`` the collective is bitwise-identical to the
  host-side shard-order sum (IEEE addition of one operand pair is
  commutative); beyond that the fabric picks the association order, so
  :attr:`exact_collective_max_g` is 2 and the conformance suite's
  bitwise tests stop there.
- **Fused forward + all-reduce.**  :meth:`map_allreduce` /
  :meth:`map_allreduce_async` override the base host-combine path with
  :func:`_fused_collective_task`: each rank runs the forward task *and*
  its ``dist.all_reduce`` inside one RPC, so a serial sharded training
  step costs **one** round-trip instead of two (pipelined: two instead
  of three) — the RPC pins in the conformance suite.  Rank 0's reply
  carries the reduced array; the caller still records the
  ``(g - 1) * payload`` ``"allreduce"`` ops, and under
  ``use_precision("mixed")`` each rank upcasts its float32 partial to
  float64 before the collective, matching the host-side accumulate
  dtype bit for bit at ``g <= 2``.
- **Start method.**  Always ``spawn`` by default: NCCL (and CUDA
  contexts generally) are unsupported across ``fork``, and gloo's
  threads are healthiest in a fresh interpreter.  Workers therefore only
  run module-level task functions — which is all the library submits.
- **Failure containment.**  A killed rank surfaces as a
  :class:`~repro.exceptions.ShardError` from its pipe (inherited); a
  rank stuck in a collective whose peer died gets a gloo error or the
  group timeout (``timeout_s``), never an unbounded hang, and
  ``close()`` terminates stragglers, unlinks the segments and removes
  the rendezvous directory — so the process group is always torn down.
  The liveness probe (``alive()``, inherited from the process
  executors) reports dead ranks without raising, which is what lets
  elastic recovery (:mod:`repro.shard.recovery`) shrink to the
  survivors: the broken group is closed, a *new* transport instance —
  with a fresh rendezvous directory and process group at world size
  ``g - 1`` — is built from the last checkpoint, and training resumes.

``torch`` is imported lazily and only in the children (availability is
probed with ``importlib.util.find_spec``), so registering this transport
costs the parent nothing when torch is absent.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import shutil
import tempfile
import weakref
from typing import Any, Sequence

import numpy as np

from repro.backend import ArrayBackend, NumpyBackend, get_backend, to_numpy
from repro.config import accumulate_dtype, mixed_precision_active
from repro.exceptions import ConfigurationError, ShardError
from repro.instrument import record_ops
from repro.observe.tracer import span
from repro.shard.plan import ShardPlan
from repro.shard.transport.base import (
    PendingMap,
    PendingReduce,
    ShardWorker,
    _split_partial,
)
from repro.shard.transport.process import ProcessTransport, _SegmentSpec, _WorkerSpec

__all__ = [
    "TorchDistributedTransport",
    "torchdist_available",
]


def torchdist_available() -> bool:
    """True when torch (and with it ``torch.distributed``'s gloo backend
    on every supported platform) is installed.  Probed without importing
    torch, so calling this — e.g. from the transport registry — never
    pays torch's import cost or initializes its thread pools in the
    parent."""
    return importlib.util.find_spec("torch") is not None


def _spec_wants_cuda(spec: Any) -> bool:
    return isinstance(spec, str) and "cuda" in spec


# ---------------------------------------------------------------------------
# Child-side hooks and tasks (module-level: picklable under spawn).
# ---------------------------------------------------------------------------


def _join_process_group(spec: _WorkerSpec) -> None:
    """Child bootstrap: join the transport's process group as this
    shard's rank (runs before the serve loop; blocks until every rank
    has joined or ``timeout_s`` elapses)."""
    import datetime
    import os
    import sys

    # All ranks share one host; pin gloo to the loopback interface so it
    # never depends on the container's hostname resolution.  The
    # interface name is platform-specific ("lo" on Linux, "lo0" on the
    # BSDs/macOS); elsewhere leave gloo's own discovery in charge.
    loopback = {"linux": "lo", "darwin": "lo0"}.get(sys.platform)
    if loopback is not None:
        os.environ.setdefault("GLOO_SOCKET_IFNAME", loopback)
    if _spec_wants_cuda(spec.backend_spec):
        device = spec.backend_spec.split(":", 1)[1]  # "cuda" or "cuda:<i>"
        if ":" in device:
            import torch

            torch.cuda.set_device(int(device.rsplit(":", 1)[-1]))
    import torch.distributed as dist

    dist.init_process_group(
        backend=spec.options["dist_backend"],
        init_method="file://" + spec.options["init_file"],
        rank=spec.shard_id,
        world_size=spec.options["world_size"],
        timeout=datetime.timedelta(seconds=spec.options["timeout_s"]),
    )


def _leave_process_group(spec: _WorkerSpec) -> None:
    """Child teardown: destroy the process group on serve-loop exit
    (including task-failure exits); a SIGKILLed rank's group dies with
    the process."""
    import torch.distributed as dist

    if dist.is_available() and dist.is_initialized():
        dist.destroy_process_group()


def _dist_allreduce_task(worker: ShardWorker, partial: np.ndarray) -> np.ndarray | None:
    """Run one ``all_reduce(SUM)`` over the group with this rank's
    partial; rank 0 returns the reduced array.  The collective's op
    charge is recorded by the *caller* (see
    :meth:`TorchDistributedTransport.allreduce`), not here: shard meters
    hold compute only on every transport, so per-shard accounting stays
    comparable across thread/process/torchdist.

    Under mixed precision (the task runs inside the submitter's
    re-established precision scope) the partial is lifted to the
    accumulate dtype (float64) *before* the collective, so the fabric's
    ring reduction carries the same precision as the host-side
    :func:`~repro.shard.transport.base.allreduce_sum`."""
    import torch
    import torch.distributed as dist

    arr = np.ascontiguousarray(partial)
    if mixed_precision_active():
        acc = np.result_type(arr.dtype, accumulate_dtype())
        if arr.dtype != acc:
            arr = arr.astype(acc)
    if arr.size == 0:
        # Zero-row batch (an empty serving tick): every rank's partial is
        # empty, so the reduction is the empty array itself.  Skip the
        # fabric collective — backends need not support zero-element
        # tensors, and there are no bytes to move.
        return arr if dist.get_rank() == 0 else None
    device = getattr(worker.backend, "device", None)
    if device is not None and _spec_wants_cuda(str(device)):
        tensor = torch.as_tensor(arr, device=device)
    else:
        tensor = torch.from_numpy(arr)
    try:
        dist.all_reduce(tensor, op=dist.ReduceOp.SUM)
    except Exception as exc:
        # A peer rank died or the group timed out: a transport failure,
        # not a task bug — surface it as the transport's error type
        # (kept chain-free so it pickles back to the parent intact).
        raise ShardError(
            f"shard {worker.shard_id} collective failed (dead peer rank "
            f"or group timeout): {exc}"
        ) from None
    if dist.get_rank() != 0:
        return None
    return np.asarray(tensor.cpu().numpy())


def _fused_collective_task(
    worker: ShardWorker,
    fn: Any,
    args: tuple,
    kwargs: dict | None,
) -> tuple:
    """Run ``fn(worker, *args, **kwargs)`` and all-reduce the partial it
    produced — one task, one RPC round-trip per rank and step, where the
    unfused path pays two (compute, then collective).  ``fn`` follows the
    :meth:`~repro.shard.transport.base.ShardTransport.map_allreduce`
    contract: a bare partial, or ``(partial, extra)`` with the extra
    returned untouched next to rank 0's reduced array."""
    result = fn(worker, *args, **(kwargs or {}))
    partial, extra = _split_partial(result)
    reduced = _dist_allreduce_task(worker, np.asarray(to_numpy(partial)))
    return reduced, extra


class _DistPendingReduce(PendingReduce):
    """Await side of the fused map + collective: every rank's task
    already all-reduced in-flight (see :func:`_fused_collective_task`),
    so awaiting only extracts rank 0's reduced array, relays the compute
    deltas, and records the caller-side shape-derived ``"allreduce"``
    charge — identical to the unfused path's accounting."""

    def result(self) -> tuple[Any, list[Any | None]]:
        replies = self._pending.result()  # [(reduced | None, extra)] per rank
        out = np.asarray(replies[0][0])
        g = self._transport.g
        with span("allreduce", transport=self._transport.name, g=g, fused=True):
            record_ops("allreduce", (g - 1) * int(out.size))
        bk = self._bk if self._bk is not None else get_backend()
        return bk.asarray(out), [extra for _, extra in replies]


def _pull_weights_task(worker: ShardWorker) -> np.ndarray:
    return np.asarray(to_numpy(worker.weights)).copy()


def _set_rows_task(worker: ShardWorker, rows: np.ndarray) -> None:
    worker.weights = worker.backend.asarray(
        rows, dtype=worker.backend.dtype_of(worker.weights)
    )
    worker.weights_is_view = False


class TorchDistributedTransport(ProcessTransport):
    """Shard transport whose workers are ranks of a ``torch.distributed``
    process group (module docstring).

    Parameters
    ----------
    plan, centers, weights:
        As for :class:`~repro.shard.transport.process.ProcessTransport`.
    backends:
        Per-shard backend specs.  ``None`` / ``"numpy"`` runs NumPy
        workers whose collectives go through gloo over CPU tensors
        wrapped zero-copy from the partials — the configuration the CI
        conformance matrix pins bitwise against the thread transport.
        ``"torch:cpu"`` runs torch CPU workers (still gloo);
        ``["torch:cuda:0", "torch:cuda:1", ...]`` runs CUDA workers and
        selects NCCL.  Specs must be strings or ``None`` — backend
        instances cannot cross the process boundary.
    dist_backend:
        Process-group backend override; default ``"nccl"`` when every
        spec is CUDA, else ``"gloo"``.
    timeout_s:
        Process-group timeout: bounds rendezvous and any collective
        whose peer died (a clean error instead of a hang).
    start_method:
        Default ``"spawn"`` (NCCL and CUDA contexts do not survive
        ``fork``); ``"fork"`` is accepted for CPU-only local runs.
    """

    name = "torchdist"
    exact_collective_max_g = 2

    @classmethod
    def is_available(cls) -> bool:
        return torchdist_available()

    @classmethod
    def link_name(cls, backends: Any | None = None) -> str:
        specs = (
            backends
            if isinstance(backends, (list, tuple))
            else [backends]
        )
        return "nccl" if specs and all(_spec_wants_cuda(s) for s in specs) else "gloo"

    def __init__(
        self,
        plan: ShardPlan,
        centers: np.ndarray,
        weights: np.ndarray | None = None,
        backends: Sequence[str | ArrayBackend | None] | None = None,
        *,
        dist_backend: str | None = None,
        timeout_s: float = 60.0,
        start_method: str | None = None,
    ) -> None:
        if not torchdist_available():
            raise ConfigurationError(
                "transport='torchdist' requires torch (pip install "
                "repro[torch]); available transports exclude it on this "
                "host"
            )
        self._dist_backend_override = dist_backend
        self._timeout_s = float(timeout_s)
        self._init_dir = tempfile.mkdtemp(prefix="repro-torchdist-")
        # Backstop mirroring the shared-memory finalizer: the rendezvous
        # directory never outlives the transport, even without close().
        self._init_dir_finalizer = weakref.finalize(
            self, shutil.rmtree, self._init_dir, ignore_errors=True
        )
        # The base constructor runs _validate_backends exactly once and
        # stores the normalized specs; _torch_workers/_dist_backend
        # derive from that single result.
        super().__init__(
            plan, centers, weights, backends, start_method=start_method
        )

    @property
    def _torch_workers(self) -> bool:
        """True when any worker holds a torch backend (weights are then
        device copies moved by tasks, not shared-memory writes)."""
        return any(spec is not None for spec in self._backend_specs)

    @property
    def _dist_backend(self) -> str:
        # link_name() returns exactly the dist backend names, so the
        # fabric the cost model charges is the one the group initializes.
        return self._dist_backend_override or self.link_name(
            self._backend_specs
        )

    # ------------------------------------------------------ subclass hooks
    def _validate_backends(
        self,
        backends: Sequence[str | ArrayBackend | None] | None,
        plan: ShardPlan,
    ) -> list[str | None]:
        specs: list[str | None] = []
        for spec in backends if backends is not None else [None] * plan.g:
            if spec is None or spec == "numpy" or isinstance(spec, NumpyBackend):
                specs.append(None)
            elif isinstance(spec, str) and spec.split(":", 1)[0] == "torch":
                specs.append(spec)
            else:
                raise ConfigurationError(
                    "the torchdist transport takes backend specs of "
                    "None, 'numpy', 'torch:cpu' or 'torch:cuda:<i>' "
                    f"(strings — instances cannot cross the process "
                    f"boundary); got {spec!r}"
                )
        if len(specs) != plan.g:
            raise ConfigurationError(
                f"plan has {plan.g} shards but {len(specs)} backend specs given"
            )
        return specs

    def _default_start_method(self) -> str:
        return "spawn"

    def _child_spec(
        self,
        shard_id: int,
        lo: int,
        hi: int,
        centers_spec: _SegmentSpec,
        weights_spec: _SegmentSpec | None,
        start_method: str,
    ) -> _WorkerSpec:
        spec = super()._child_spec(
            shard_id, lo, hi, centers_spec, weights_spec, start_method
        )
        return dataclasses.replace(
            spec,
            bootstrap=_join_process_group,
            teardown=_leave_process_group,
            options={
                "dist_backend": self._dist_backend,
                "init_file": self._init_dir + "/rendezvous",
                "world_size": self.plan.g,
                "timeout_s": self._timeout_s,
            },
        )

    # ----------------------------------------------------------- collective
    def allreduce(
        self, partials: Sequence[Any], bk: ArrayBackend | None = None
    ) -> Any:
        """Combine per-shard partials with one ``dist.all_reduce`` across
        the group: each rank receives its own partial over the task
        channel (one RPC per rank), the fabric reduces, rank 0 returns
        the result, and the caller's meters are charged the same
        shape-derived ``(g - 1) * payload`` as the host-side
        :func:`~repro.shard.transport.base.allreduce_sum`.  Single-rank
        groups short-circuit host-side — no task, no ``"allreduce"``
        ops."""
        if len(partials) != self.g:
            raise ConfigurationError(
                f"allreduce needs {self.g} partials, got {len(partials)}"
            )
        bk = bk if bk is not None else get_backend()
        if self.g == 1:
            return bk.asarray(np.array(to_numpy(partials[0]), copy=True))
        with span("allreduce", transport=self.name, g=self.g):
            futures = [
                ex.submit_metered(
                    _dist_allreduce_task, np.ascontiguousarray(to_numpy(p))
                )
                for ex, p in zip(self.executors, partials)
            ]
            results = PendingMap(futures).result()
            out = results[0]
            # Shape-derived charge on the caller's meters — identical to
            # allreduce_sum's, and kept off the shard meters so per-shard
            # accounting (compute only) stays comparable across transports.
            record_ops("allreduce", (self.g - 1) * int(np.asarray(out).size))
            return bk.asarray(out)

    def map_allreduce_async(
        self,
        fn: Any,
        *args: Any,
        bk: ArrayBackend | None = None,
        **kwargs: Any,
    ) -> PendingReduce:
        """Fused form of map + all-reduce: each rank runs ``fn`` *and*
        the ``dist.all_reduce`` inside a single task — one RPC round-trip
        per rank and step where the unfused path pays two (the serial
        sharded iteration drops from 2 round-trips to 1; the pipelined
        one from 3 to 2).  Single-rank groups keep the base path — no
        collective task, no ``"allreduce"`` ops, matching the cost
        model's ``g = 1`` short circuit."""
        if self.g == 1:
            return super().map_allreduce_async(fn, *args, bk=bk, **kwargs)
        pending = PendingMap(
            [
                ex.submit_metered(_fused_collective_task, fn, args, kwargs)
                for ex in self.executors
            ]
        )
        return _DistPendingReduce(self, pending, bk)

    # -------------------------------------------------------------- weights
    # NumPy workers inherit the process transport's weight story wholesale:
    # shared-memory rows, direct-write mirror (zero tasks), segment
    # gather/scatter.  Torch-backed workers hold *device copies*, so every
    # weight movement must ride the task channel instead.
    def mirror_rows(
        self, global_idx: np.ndarray, rows: np.ndarray
    ) -> PendingMap | None:
        if not self._torch_workers:
            return super().mirror_rows(global_idx, rows)
        # Keep the shared segment authoritative for the parent, then push
        # rows to the device copies (FIFO order makes this async-safe,
        # exactly as for the thread transport's device shards).
        super().mirror_rows(global_idx, rows)
        from repro.shard.transport.base import _push_rows_task

        idx = np.asarray(global_idx)
        with span("mirror", transport=self.name, rows=len(idx), queued=self.g):
            parts = self.plan.localize(idx)
            return self.map_async(_push_rows_task, parts, rows)

    def gather_weights(self) -> np.ndarray:
        if not self._torch_workers:
            return super().gather_weights()
        with span("gather", transport=self.name, g=self.g):
            return np.concatenate(self.map(_pull_weights_task), axis=0)

    def set_weights(self, weights: np.ndarray) -> None:
        super().set_weights(weights)
        if self._torch_workers:
            weights_np = np.asarray(weights)
            futures = [
                ex.submit(_set_rows_task, weights_np[sl])
                for ex, sl in zip(self.executors, self.plan.slices)
            ]
            for f in futures:
                f.result()

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        super().close()
        init_dir, self._init_dir = getattr(self, "_init_dir", None), None
        if init_dir is not None:
            shutil.rmtree(init_dir, ignore_errors=True)
        finalizer = getattr(self, "_init_dir_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
