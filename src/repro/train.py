"""Command-line training front-end: ``python -m repro.train``.

A downstream-user entry point that strings the whole pipeline together —
dataset, (optionally cross-validated) kernel, automatic parameter
selection, training with early stopping — and prints the Table-4-style
parameter report plus final metrics.

Examples::

    python -m repro.train --dataset mnist --kernel laplacian --bandwidth 10
    python -m repro.train --dataset susy --kernel gaussian --auto-bandwidth \
        --epochs 8 --n-train 5000
    python -m repro.train --dataset timit --kernel laplacian --bandwidth 15 \
        --device titan-x --gpus 4
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.bandwidth import select_bandwidth
from repro.core.eigenpro2 import EigenPro2
from repro.data import get_dataset, train_val_split
from repro.device.cluster import multi_gpu
from repro.device.presets import tesla_k40, titan_x, titan_xp
from repro.kernels import KERNELS, make_kernel

_DEVICES = {"titan-xp": titan_xp, "titan-x": titan_x, "tesla-k40": tesla_k40}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.train",
        description="Train an EigenPro 2.0 kernel machine end to end.",
    )
    parser.add_argument("--dataset", required=True,
                        help="dataset name (see repro.data.DATASETS)")
    parser.add_argument("--n-train", type=int, default=2000)
    parser.add_argument("--n-test", type=int, default=500)
    parser.add_argument("--kernel", default="laplacian",
                        choices=sorted(KERNELS))
    parser.add_argument("--bandwidth", type=float, default=None,
                        help="kernel bandwidth (omit with --auto-bandwidth)")
    parser.add_argument("--auto-bandwidth", action="store_true",
                        help="cross-validate the bandwidth on a subsample")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--device", default="titan-xp",
                        choices=sorted(_DEVICES))
    parser.add_argument("--gpus", type=int, default=1,
                        help="number of simulated GPUs (Section-6 extension)")
    parser.add_argument("--val-fraction", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    t0 = time.perf_counter()
    ds = get_dataset(
        args.dataset, n_train=args.n_train, n_test=args.n_test,
        seed=args.seed,
    )
    print(f"dataset: {ds}")
    x_train, y_train, x_val, y_val = train_val_split(
        ds.x_train, ds.y_train, val_fraction=args.val_fraction,
        seed=args.seed,
    )

    kernel_cls = KERNELS[args.kernel]
    if args.auto_bandwidth or args.bandwidth is None:
        sel = select_bandwidth(
            kernel_cls, x_train, y_train,
            subsample=min(800, len(x_train)), seed=args.seed,
        )
        bandwidth = sel.bandwidth
        print(f"cross-validated bandwidth: {bandwidth:.3g} "
              f"(cv error {100 * sel.scores[bandwidth]:.2f}%)")
    else:
        bandwidth = args.bandwidth

    device = _DEVICES[args.device]()
    if args.gpus > 1:
        device = multi_gpu(device, args.gpus)
    print(f"device: {device.name}")

    model = EigenPro2(
        make_kernel(args.kernel, bandwidth=bandwidth),
        device=device, seed=args.seed,
    )
    model.fit(
        x_train, y_train, epochs=args.epochs,
        x_val=x_val, y_val=y_val, val_patience=2, keep_best_val=True,
    )
    p = model.params_
    print("\nautomatically selected parameters (paper Table 4):")
    for key, value in p.as_row().items():
        print(f"  {key:<24} {value}")
    err = model.classification_error(ds.x_test, ds.labels_test)
    print(f"\ntest error:              {100 * err:.2f}%")
    print(f"epochs run:              {len(model.history_)}")
    print(f"simulated device time:   {device.elapsed:.3f}s")
    print(f"wall time:               {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
