"""Shared fixtures: small, deterministic datasets and kernels.

Everything here is sized for sub-second tests; scale-sensitive behaviour
(linear scaling curves, overhead fractions) is checked on these small
instances and exercised at larger scale by the benchmark suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, MixtureSpec, make_mixture_classification
from repro.kernels import CauchyKernel, GaussianKernel, LaplacianKernel, PolynomialKernel


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_xy() -> tuple[np.ndarray, np.ndarray]:
    """A tiny regression problem: 60 points, 5 features, 1 target."""
    gen = np.random.default_rng(7)
    x = gen.standard_normal((60, 5))
    y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
    return x, y[:, None]


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """A 3-class classification dataset, 240 train / 120 test points."""
    spec = MixtureSpec(
        n_classes=3, dim=12, n_clusters=2, separation=1.2, noise=0.35,
        spectrum_decay=0.8,
    )
    return make_mixture_classification(
        "test-mixture", 240, 120, spec, normalization="zscore", seed=3
    )


@pytest.fixture(scope="session")
def medium_dataset() -> Dataset:
    """A slightly larger 5-class dataset for trainer/integration tests."""
    spec = MixtureSpec(
        n_classes=5, dim=20, n_clusters=2, separation=1.0, noise=0.45,
        spectrum_decay=1.0,
    )
    return make_mixture_classification(
        "test-mixture-5", 500, 200, spec, normalization="zscore", seed=11
    )


@pytest.fixture(
    params=[
        GaussianKernel(bandwidth=2.0),
        LaplacianKernel(bandwidth=2.0),
        CauchyKernel(bandwidth=2.0),
    ],
    ids=["gaussian", "laplacian", "cauchy"],
)
def radial_kernel(request):
    return request.param


@pytest.fixture(
    params=[
        GaussianKernel(bandwidth=2.0),
        LaplacianKernel(bandwidth=2.0),
        CauchyKernel(bandwidth=2.0),
        PolynomialKernel(degree=2, gamma=0.1, coef0=1.0),
    ],
    ids=["gaussian", "laplacian", "cauchy", "polynomial"],
)
def any_kernel(request):
    return request.param
