"""Backend-parity suite: NumPy and Torch must agree on the whole substrate.

The pluggable backend layer (:mod:`repro.backend`) only earns its keep if
every backend computes the *same numbers* — the paper's algorithm is
deterministic given the seed, and all randomness (subsample draws, batch
shuffles, sketches, start vectors) is drawn with NumPy generators and
pushed to the backend.  These tests therefore assert elementwise closeness
between backends for each layer of the stack: pairwise distances, all five
kernels, the blocked matvec, the Nyström extension, and a short EigenPro2
fit — plus the backend-invariance of :class:`~repro.instrument.OpMeter`
counts that the Table-1 cost-model validation relies on.

When torch is not installed every cross-backend test *skips* (never
fails); the NumPy-only contract tests at the bottom still run.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro import EigenPro2
from repro.backend import (
    NumpyBackend,
    available_backends,
    backend_of,
    get_backend,
    resolve_backend,
    set_backend,
    to_numpy,
    use_backend,
)
from repro.config import (
    MIXED_PRECISION,
    fusion_enabled,
    get_precision,
    mixed_precision_active,
    use_fusion,
    use_precision,
)
from repro.exceptions import BackendUnavailableError, ConfigurationError
from repro.instrument import meter_scope
from repro.kernels import (
    CauchyKernel,
    GaussianKernel,
    LaplacianKernel,
    MaternKernel,
    PolynomialKernel,
    kernel_matvec,
)
from repro.kernels.pairwise import euclidean_distances, sq_euclidean_distances
from repro.linalg import nystrom_extension

HAS_TORCH = importlib.util.find_spec("torch") is not None

requires_torch = pytest.mark.skipif(
    not HAS_TORCH, reason="torch not installed — Torch backend unavailable"
)

ALL_KERNELS = [
    GaussianKernel(bandwidth=2.0),
    LaplacianKernel(bandwidth=2.0),
    CauchyKernel(bandwidth=2.0),
    MaternKernel(bandwidth=2.0, nu=1.5),
    PolynomialKernel(degree=2, gamma=0.1, coef0=1.0),
]
KERNEL_IDS = ["gaussian", "laplacian", "cauchy", "matern", "polynomial"]


@pytest.fixture(scope="module")
def xz():
    rng = np.random.default_rng(42)
    return rng.standard_normal((60, 7)), rng.standard_normal((35, 7))


def run_on(backend_name: str, fn):
    """Run ``fn`` under the named backend and return NumPy results."""
    with use_backend(backend_name):
        result = fn()
    if isinstance(result, tuple):
        return tuple(to_numpy(r) for r in result)
    return to_numpy(result)


# --------------------------------------------------------------------------
# Cross-backend parity (skipped without torch)
# --------------------------------------------------------------------------


@requires_torch
class TestPairwiseParity:
    def test_sq_euclidean(self, xz):
        x, z = xz
        ref = run_on("numpy", lambda: sq_euclidean_distances(x, z))
        got = run_on("torch", lambda: sq_euclidean_distances(x, z))
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)

    def test_euclidean(self, xz):
        x, z = xz
        ref = run_on("numpy", lambda: euclidean_distances(x, z))
        got = run_on("torch", lambda: euclidean_distances(x, z))
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)

    def test_precomputed_norms(self, xz):
        x, z = xz
        z_norms = np.einsum("ij,ij->i", z, z)
        ref = run_on("numpy", lambda: sq_euclidean_distances(x, z, z_sq_norms=z_norms))
        got = run_on("torch", lambda: sq_euclidean_distances(x, z, z_sq_norms=z_norms))
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)


@requires_torch
class TestKernelParity:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=KERNEL_IDS)
    def test_cross_matrix(self, kernel, xz):
        x, z = xz
        ref = run_on("numpy", lambda: kernel(x, z))
        got = run_on("torch", lambda: kernel(x, z))
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=KERNEL_IDS)
    def test_diag(self, kernel, xz):
        x, _ = xz
        ref = run_on("numpy", lambda: kernel.diag(x))
        got = run_on("torch", lambda: kernel.diag(x))
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_float32_precision_scope(self, xz):
        x, z = xz
        kernel = GaussianKernel(bandwidth=2.0)

        def f32():
            with use_precision("float32"):
                return kernel(x, z)

        ref = run_on("numpy", f32)
        got = run_on("torch", f32)
        assert ref.dtype == np.float32 and got.dtype == np.float32
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-5)


@requires_torch
class TestOpsParity:
    def test_kernel_matvec(self, xz):
        x, z = xz
        rng = np.random.default_rng(0)
        w = rng.standard_normal((z.shape[0], 3))
        kernel = LaplacianKernel(bandwidth=2.0)
        ref = run_on(
            "numpy", lambda: kernel_matvec(kernel, x, z, w, max_scalars=200)
        )
        got = run_on(
            "torch", lambda: kernel_matvec(kernel, x, z, w, max_scalars=200)
        )
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_nystrom_extension(self, xz):
        x, _ = xz
        kernel = GaussianKernel(bandwidth=2.0)

        def build():
            ext = nystrom_extension(kernel, x, subsample_size=30, q=5, seed=0)
            return ext.eigvals, ext.eigenfunction_values(x)

        ref_vals, ref_funcs = run_on("numpy", build)
        got_vals, got_funcs = run_on("torch", build)
        np.testing.assert_allclose(got_vals, ref_vals, rtol=1e-8, atol=1e-10)
        # Eigenvectors are sign-ambiguous; compare magnitudes.
        np.testing.assert_allclose(
            np.abs(got_funcs), np.abs(ref_funcs), rtol=1e-6, atol=1e-8
        )


@requires_torch
class TestTrainingParity:
    def test_short_eigenpro2_fit(self, small_dataset):
        ds = small_dataset

        def fit():
            model = EigenPro2(
                LaplacianKernel(bandwidth=4.0), s=100, q=20, seed=0
            )
            model.fit(ds.x_train, ds.y_train, epochs=2)
            return model.predict(ds.x_test)

        ref = run_on("numpy", fit)
        got = run_on("torch", fit)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-8)

    def test_op_counts_identical_for_one_epoch(self, small_dataset):
        """The archetype invariant: a metered EigenPro2 epoch reports the
        same op counts on every backend (cost model is shape-derived)."""
        ds = small_dataset
        counts = {}
        for name in available_backends():
            with use_backend(name), meter_scope() as meter:
                model = EigenPro2(
                    LaplacianKernel(bandwidth=4.0), s=100, q=20, seed=0
                )
                model.fit(ds.x_train, ds.y_train, epochs=1)
            counts[name] = meter.as_dict()
        assert counts["torch"] == counts["numpy"]


@pytest.fixture(scope="module")
def svm_problem():
    """A small, well-separated 2-class problem: large margins make the
    SMO pair selection and the Pegasos margin tests robust to sub-ulp
    backend differences, so whole trajectories match across backends."""
    gen = np.random.default_rng(5)
    x = np.concatenate(
        [
            gen.standard_normal((40, 4)) + 3.0,
            gen.standard_normal((40, 4)) - 3.0,
        ]
    )
    y = np.concatenate([np.ones(40, dtype=np.intp), np.zeros(40, dtype=np.intp)])
    return x, y


@requires_torch
class TestBaselineSolversParity:
    """SMO and Pegasos — the last NumPy-only baselines — now evaluate
    their kernels through the backend layer: the whole ``baselines/``
    package is backend-clean."""

    def test_smo_matches_numpy(self, svm_problem):
        from repro.baselines import SMOSVM

        x, y = svm_problem

        def fit():
            svm = SMOSVM(GaussianKernel(bandwidth=3.0), max_iter=2000)
            svm.fit(x, y)
            return svm

        with use_backend("numpy"):
            ref = fit()
        with use_backend("torch"):
            got = fit()
        # Identical trajectories, not just similar solutions.
        assert got.stats_.iterations == ref.stats_.iterations
        assert got.converged_ == ref.converged_
        np.testing.assert_allclose(
            got.dual_coef_, ref.dual_coef_, atol=1e-8, rtol=0
        )
        np.testing.assert_allclose(
            got.intercepts_, ref.intercepts_, atol=1e-8, rtol=0
        )
        d_ref = np.asarray(ref.decision_function(x))
        with use_backend("torch"):
            d_got = to_numpy(got.decision_function(x))
        np.testing.assert_allclose(d_got, d_ref, atol=1e-6, rtol=0)

    def test_pegasos_matches_numpy(self, svm_problem):
        from repro.baselines import PegasosSVM

        x, y = svm_problem

        def fit():
            svm = PegasosSVM(
                GaussianKernel(bandwidth=3.0), reg_lambda=1e-3,
                batch_size=16, seed=0,
            )
            svm.fit(x, y, epochs=3)
            return svm

        with use_backend("numpy"):
            ref = fit()
        with use_backend("torch"):
            got = fit()
        np.testing.assert_allclose(
            np.asarray(to_numpy(got.model_.weights)),
            np.asarray(ref.model_.weights),
            atol=1e-10,
            rtol=0,
        )
        assert got.classification_error(x, y) == ref.classification_error(x, y)

    def test_smo_op_counts_backend_invariant(self, svm_problem):
        from repro.baselines import SMOSVM

        x, y = svm_problem
        counts = {}
        for name in available_backends():
            with use_backend(name), meter_scope() as meter:
                SMOSVM(GaussianKernel(bandwidth=3.0), max_iter=500).fit(x, y)
            counts[name] = meter.as_dict()
        assert counts["torch"] == counts["numpy"]


class TestBaselineSolversInShardExecutors:
    """Backend-clean baselines run unchanged inside shard executors (each
    owning a private backend instance) — always-on NumPy coverage."""

    def test_smo_inside_shard_executor(self, svm_problem):
        from repro.baselines import SMOSVM
        from repro.shard import ShardGroup

        x, y = svm_problem
        ref = SMOSVM(GaussianKernel(bandwidth=3.0), max_iter=500).fit(x, y)
        with ShardGroup.build(x, g=2) as group:
            fitted = group.map(
                lambda worker: SMOSVM(
                    GaussianKernel(bandwidth=3.0), max_iter=500
                ).fit(x, y)
            )
        for svm in fitted:
            np.testing.assert_allclose(
                svm.dual_coef_, ref.dual_coef_, atol=1e-12, rtol=0
            )

    def test_pegasos_inside_shard_executor(self, svm_problem):
        from repro.baselines import PegasosSVM
        from repro.shard import ShardGroup

        x, y = svm_problem
        ref = PegasosSVM(
            GaussianKernel(bandwidth=3.0), reg_lambda=1e-3, batch_size=16,
            seed=0,
        ).fit(x, y, epochs=2)
        with ShardGroup.build(x, g=2) as group:
            fitted = group.map(
                lambda worker: PegasosSVM(
                    GaussianKernel(bandwidth=3.0), reg_lambda=1e-3,
                    batch_size=16, seed=0,
                ).fit(x, y, epochs=2)
            )
        for svm in fitted:
            np.testing.assert_allclose(
                np.asarray(svm.model_.weights),
                np.asarray(ref.model_.weights),
                atol=1e-12,
                rtol=0,
            )


# --------------------------------------------------------------------------
# Backend API contract (always runs, torch or not)
# --------------------------------------------------------------------------


class TestBackendRegistry:
    def test_default_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_use_backend_scopes_and_restores(self):
        outer = get_backend()
        with use_backend("numpy") as bk:
            assert get_backend() is bk
        assert get_backend() is outer

    def test_set_backend_roundtrip(self):
        try:
            set_backend("numpy")
            assert get_backend().name == "numpy"
        finally:
            set_backend(None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("tpu")

    def test_numpy_backend_takes_no_device(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("numpy:cuda")

    def test_missing_torch_raises_cleanly(self):
        if HAS_TORCH:
            pytest.skip("torch installed — unavailability path not testable")
        with pytest.raises(BackendUnavailableError):
            resolve_backend("torch")

    def test_backend_of_numpy_array(self):
        assert backend_of(np.zeros(3)) is resolve_backend("numpy")

    def test_instance_spec_passthrough(self):
        bk = NumpyBackend()
        assert resolve_backend(bk) is bk


class TestNumpyBackendContract:
    """The ArrayBackend surface, pinned on the reference implementation."""

    def test_roundtrip(self):
        bk = resolve_backend("numpy")
        x = [[1.0, 2.0], [3.0, 4.0]]
        np.testing.assert_array_equal(bk.to_numpy(bk.asarray(x)), np.asarray(x))

    def test_top_eigh_descending(self):
        bk = resolve_backend("numpy")
        a = np.diag([1.0, 3.0, 2.0])
        vals, vecs = bk.top_eigh(a, 2)
        np.testing.assert_allclose(vals, [3.0, 2.0])
        assert vecs.shape == (3, 2)

    def test_cholesky_failure_unified(self):
        from repro.exceptions import BackendLinAlgError

        bk = resolve_backend("numpy")
        with pytest.raises(BackendLinAlgError):
            bk.cholesky(np.array([[1.0, 2.0], [2.0, -5.0]]))

    def test_empty_uses_active_precision(self):
        bk = resolve_backend("numpy")
        with use_precision("float32"):
            assert bk.empty((2, 2)).dtype == np.float32
        assert bk.empty((2, 2)).dtype == get_precision()


class TestPrecisionSwitch:
    def test_float32_inputs_not_promoted(self, xz):
        """The historical bug: float32 inputs silently upcast to float64."""
        x, z = xz
        d = sq_euclidean_distances(x.astype(np.float32), z.astype(np.float32))
        assert d.dtype == np.float32

    def test_float64_default_unchanged(self, xz):
        x, z = xz
        assert sq_euclidean_distances(x, z).dtype == np.float64

    def test_explicit_precision_overrides_inputs(self, xz):
        x, z = xz
        with use_precision("float32"):
            assert sq_euclidean_distances(x, z).dtype == np.float32
        with use_precision("float64"):
            d = sq_euclidean_distances(x.astype(np.float32), z.astype(np.float32))
        assert d.dtype == np.float64

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=KERNEL_IDS)
    def test_kernels_follow_input_dtype(self, kernel, xz):
        x, z = xz
        out32 = kernel(x.astype(np.float32), z.astype(np.float32))
        assert out32.dtype == np.float32
        out64 = kernel(x, z)
        assert out64.dtype == np.float64
        np.testing.assert_allclose(out32, out64, atol=1e-4)

    def test_explicit_kernel_dtype_still_wins(self, xz):
        x, z = xz
        k = GaussianKernel(bandwidth=2.0, dtype=np.float32)
        with use_precision("float64"):
            assert k(x, z).dtype == np.float32

    def test_float32_values_match_float64(self, xz):
        x, z = xz
        k = LaplacianKernel(bandwidth=2.0)
        ref = k(x, z)
        with use_precision("float32"):
            got = k(x, z)
        np.testing.assert_allclose(got, ref, atol=1e-4)


# --------------------------------------------------------------------------
# Precision tiers: float64 (bitwise) / float32 / mixed (documented bounds)
# --------------------------------------------------------------------------


def _tier_fit(ds, precision=None):
    """One short EigenPro2 fit under the given precision tier; returns the
    fitted model and its NumPy test-set predictions."""

    def fit():
        model = EigenPro2(LaplacianKernel(bandwidth=4.0), s=100, q=20, seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=2)
        return model, np.asarray(to_numpy(model.predict(ds.x_test)))

    if precision is None:
        return fit()
    with use_precision(precision):
        return fit()


def _rel_err(got: np.ndarray, ref: np.ndarray) -> float:
    return float(np.linalg.norm(got - ref) / np.linalg.norm(ref))


class TestPrecisionTierNumerics:
    """The tolerance-tier contract for ``use_precision``:

    - ``float64`` is the *reference* tier — an explicit float64 scope is
      bitwise identical to the ambient default;
    - ``float32`` runs every array at single precision and lands within a
      documented relative-error bound of the float64 trajectory;
    - ``mixed`` (:data:`repro.config.MIXED_PRECISION`) forms kernel blocks
      and GEMMs at float32 but keeps the master ``alpha``/``y`` state —
      and every accumulation into it — at float64 (Kahan-compensated on
      NumPy), so its accuracy matches the float32 tier while its state
      stays full precision.
    """

    #: Relative-error ceiling for the reduced-precision tiers against the
    #: float64 trajectory of the same seeded fit.  fp32 kernel blocks give
    #: ~1e-6 per-block error; two epochs of SGD amplify that, and 1e-2 is
    #: the documented (loose, stable) ceiling the tiers must stay under.
    REDUCED_TIER_RTOL = 1e-2

    def test_float64_scope_is_bitwise_reference(self, small_dataset):
        _, ref = _tier_fit(small_dataset, None)
        _, got = _tier_fit(small_dataset, "float64")
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("tier", ["float32", "mixed"])
    def test_reduced_tiers_track_float64(self, small_dataset, tier):
        _, ref = _tier_fit(small_dataset, None)
        _, got = _tier_fit(small_dataset, tier)
        assert np.all(np.isfinite(got))
        assert _rel_err(got, ref) < self.REDUCED_TIER_RTOL

    def test_mixed_accuracy_matches_float32_tier(self, small_dataset):
        """Mixed precision pays fp32 compute but must not pay *more* error
        than the all-fp32 tier (fp64 accumulation can only help)."""
        _, ref = _tier_fit(small_dataset, None)
        _, p32 = _tier_fit(small_dataset, "float32")
        _, pmx = _tier_fit(small_dataset, "mixed")
        assert _rel_err(pmx, ref) <= _rel_err(p32, ref) * 1.5 + 1e-12

    def test_mixed_master_state_is_float64(self, small_dataset):
        model, _ = _tier_fit(small_dataset, "mixed")
        assert np.asarray(to_numpy(model.model_.weights)).dtype == np.float64

    def test_float32_state_is_float32(self, small_dataset):
        model, _ = _tier_fit(small_dataset, "float32")
        assert np.asarray(to_numpy(model.model_.weights)).dtype == np.float32

    def test_mixed_kernel_blocks_compute_at_float32(self, xz):
        x, z = xz
        with use_precision("mixed"):
            assert mixed_precision_active()
            assert get_precision() == np.float32
            assert GaussianKernel(bandwidth=2.0)(x, z).dtype == np.float32
        assert not mixed_precision_active()

    def test_mixed_spec_shape(self):
        assert MIXED_PRECISION.compute == np.float32
        assert MIXED_PRECISION.accumulate == np.float64

    @requires_torch
    def test_mixed_fit_torch_tracks_numpy(self, small_dataset):
        ref = run_on("numpy", lambda: _tier_fit(small_dataset, "mixed")[1])
        got = run_on("torch", lambda: _tier_fit(small_dataset, "mixed")[1])
        np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)


# --------------------------------------------------------------------------
# Fused hot path: backend entry points vs the decomposed chain
# --------------------------------------------------------------------------


class TestFusedHotPathNumpy:
    """NumPy is the reference: its fused entry points *decompose* to the
    historical pooled-workspace chain, so fused and unfused evaluation are
    bitwise identical and op counts never depend on the fusion switch."""

    def test_fused_specs_advertised(self):
        assert GaussianKernel(bandwidth=2.0).fused_spec == (
            "gaussian",
            -0.5 / 4.0,
        )
        assert LaplacianKernel(bandwidth=2.0).fused_spec == (
            "laplacian",
            -0.5,
        )
        assert CauchyKernel(bandwidth=2.0).fused_spec is None
        assert PolynomialKernel(degree=2, gamma=0.1, coef0=1.0).fused_spec is None

    @pytest.mark.parametrize(
        "kernel", ALL_KERNELS[:2], ids=KERNEL_IDS[:2]
    )
    def test_fusion_switch_is_bitwise_invisible(self, kernel, xz):
        x, z = xz
        assert fusion_enabled()
        fused = kernel(x, z)
        with use_fusion(False):
            assert not fusion_enabled()
            unfused = kernel(x, z)
        np.testing.assert_array_equal(fused, unfused)

    def test_fused_block_matches_kernel_call(self, xz):
        x, z = xz
        bk = get_backend()
        for kernel in (GaussianKernel(bandwidth=2.0), LaplacianKernel(bandwidth=2.0)):
            profile, scale = kernel.fused_spec
            block = bk.fused_kernel_block(x, z, profile=profile, scale=scale)
            np.testing.assert_array_equal(
                np.asarray(block), np.asarray(kernel(x, z))
            )

    def test_fused_matvec_decomposes_to_block_matmul(self, xz):
        x, z = xz
        rng = np.random.default_rng(1)
        w = rng.standard_normal((z.shape[0], 2))
        bk = get_backend()
        kernel = GaussianKernel(bandwidth=2.0)
        profile, scale = kernel.fused_spec
        got = bk.fused_kernel_matvec(x, z, w, profile=profile, scale=scale)
        np.testing.assert_array_equal(
            np.asarray(got), np.asarray(kernel(x, z)) @ w
        )

    def test_unknown_profile_rejected(self, xz):
        x, z = xz
        with pytest.raises(ConfigurationError):
            get_backend().fused_kernel_block(
                x, z, profile="cauchy", scale=-1.0
            )

    def test_fused_matvec_with_precomputed_norms(self, xz):
        x, z = xz
        rng = np.random.default_rng(2)
        w = rng.standard_normal((z.shape[0],))
        kernel = LaplacianKernel(bandwidth=2.0)
        ref = kernel_matvec(kernel, x, z, w, max_scalars=300)
        z_norms = np.einsum("ij,ij->i", z, z)
        got = kernel_matvec(
            kernel, x, z, w, max_scalars=300, z_sq_norms=z_norms
        )
        np.testing.assert_array_equal(np.asarray(got), np.asarray(ref))

    def test_op_counts_invariant_under_fusion_switch(self, xz):
        x, z = xz
        rng = np.random.default_rng(3)
        w = rng.standard_normal((z.shape[0], 2))
        kernel = GaussianKernel(bandwidth=2.0)
        with meter_scope() as fused_meter:
            kernel_matvec(kernel, x, z, w, max_scalars=300)
        with use_fusion(False), meter_scope() as unfused_meter:
            kernel_matvec(kernel, x, z, w, max_scalars=300)
        assert fused_meter.as_dict() == unfused_meter.as_dict()


@requires_torch
class TestFusedHotPathTorch:
    """Torch's override (torch.compile with an eager fused fallback) must
    preserve the elementwise op order: fused float64 blocks stay bitwise
    identical to the decomposed chain *on the torch backend*, and parity
    with NumPy holds to the usual cross-backend tolerance."""

    @pytest.mark.parametrize(
        "kernel", ALL_KERNELS[:2], ids=KERNEL_IDS[:2]
    )
    def test_fused_bitwise_vs_unfused_on_torch(self, kernel, xz):
        x, z = xz

        def both():
            fused = kernel(x, z)
            with use_fusion(False):
                unfused = kernel(x, z)
            return fused, unfused

        fused, unfused = run_on("torch", both)
        np.testing.assert_array_equal(fused, unfused)

    @pytest.mark.parametrize(
        "kernel", ALL_KERNELS[:2], ids=KERNEL_IDS[:2]
    )
    def test_fused_cross_backend_parity(self, kernel, xz):
        x, z = xz
        ref = run_on("numpy", lambda: kernel(x, z))
        got = run_on("torch", lambda: kernel(x, z))
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_fused_float32_mixed_scope(self, xz):
        x, z = xz
        kernel = GaussianKernel(bandwidth=2.0)

        def mixed_block():
            with use_precision("mixed"):
                return kernel(x, z)

        ref = run_on("numpy", mixed_block)
        got = run_on("torch", mixed_block)
        assert ref.dtype == np.float32 and got.dtype == np.float32
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-5)
