"""Tests for FALKON and the exact direct solvers."""

import importlib.util

import numpy as np
import pytest

from repro.baselines import Falkon, solve_interpolation, solve_ridge
from repro.data import make_rkhs_regression
from repro.device import titan_xp
from repro.exceptions import ConfigurationError, NotFittedError
from repro.kernels import GaussianKernel


class TestInterpolation:
    def test_interpolates_exactly(self, small_xy):
        x, y = small_xy
        model = solve_interpolation(GaussianKernel(bandwidth=2.0), x, y)
        assert model.mse(x, y) < 1e-15

    def test_norm_identity(self, small_xy):
        """For the interpolant, ||f||_H^2 = alpha^T K alpha = alpha^T y —
        an identity that holds regardless of the conditioning of K."""
        x, y = small_xy
        k = GaussianKernel(bandwidth=2.0)
        model = solve_interpolation(k, x, y)
        base_norm = model.rkhs_norm_squared()
        expected = float(np.sum(model.weights * model.predict(x)))
        via_y = float(np.sum(model.weights * y))
        assert base_norm == pytest.approx(expected, rel=1e-8)
        assert base_norm == pytest.approx(via_y, rel=1e-4)

    def test_1d_targets(self, small_xy):
        x, y = small_xy
        model = solve_interpolation(GaussianKernel(bandwidth=2.0), x, y[:, 0])
        assert model.weights.shape == (len(x), 1)

    def test_row_mismatch(self, small_xy):
        x, y = small_xy
        with pytest.raises(ConfigurationError):
            solve_interpolation(GaussianKernel(bandwidth=2.0), x, y[:-1])


class TestRidge:
    def test_regularization_shrinks_norm(self, small_xy):
        x, y = small_xy
        k = GaussianKernel(bandwidth=2.0)
        interp = solve_interpolation(k, x, y)
        ridge = solve_ridge(k, x, y, reg_lambda=1e-2)
        assert ridge.rkhs_norm_squared() < interp.rkhs_norm_squared()

    def test_lambda_zero_equals_interpolation(self, small_xy):
        x, y = small_xy
        k = GaussianKernel(bandwidth=2.0)
        a = solve_ridge(k, x, y, reg_lambda=0.0)
        b = solve_interpolation(k, x, y)
        np.testing.assert_allclose(a.weights, b.weights, atol=1e-8)

    def test_negative_lambda_rejected(self, small_xy):
        x, y = small_xy
        with pytest.raises(ConfigurationError):
            solve_ridge(GaussianKernel(bandwidth=2.0), x, y, reg_lambda=-1.0)


class TestFalkon:
    def test_full_centers_tiny_lambda_interpolates(self, small_xy):
        """With M = n and lambda -> 0 FALKON approaches the interpolant."""
        x, y = small_xy
        f = Falkon(
            GaussianKernel(bandwidth=2.0), n_centers=len(x),
            reg_lambda=1e-10, max_iters=200, seed=0,
        )
        f.fit(x, y)
        assert f.mse(x, y) < 1e-6

    def test_rkhs_target_recovered(self):
        k = GaussianKernel(bandwidth=2.0)
        xt, yt, xe, ye = make_rkhs_regression(k, 300, 80, 4, seed=2)
        f = Falkon(k, n_centers=150, reg_lambda=1e-8, seed=0).fit(xt, yt)
        pred = f.predict(xe)
        rel = float(np.mean((pred - ye) ** 2) / np.mean(ye**2))
        assert rel < 1e-3

    def test_classification(self, medium_dataset):
        ds = medium_dataset
        f = Falkon(
            GaussianKernel(bandwidth=2.5), n_centers=250, reg_lambda=1e-7,
            seed=0,
        ).fit(ds.x_train, ds.y_train)
        err = f.classification_error(ds.x_test, ds.labels_test)
        assert err < 0.5

    def test_cg_converges_quickly(self, medium_dataset):
        """The FALKON preconditioner's point: a few tens of iterations."""
        ds = medium_dataset
        f = Falkon(
            GaussianKernel(bandwidth=2.5), n_centers=200, reg_lambda=1e-6,
            max_iters=300, seed=0,
        ).fit(ds.x_train, ds.y_train)
        assert f.n_iters_ < 100

    def test_more_centers_not_worse(self, medium_dataset):
        ds = medium_dataset
        k = GaussianKernel(bandwidth=2.5)
        small = Falkon(k, n_centers=50, reg_lambda=1e-7, seed=0).fit(
            ds.x_train, ds.y_train
        )
        large = Falkon(k, n_centers=400, reg_lambda=1e-7, seed=0).fit(
            ds.x_train, ds.y_train
        )
        assert large.mse(ds.x_train, ds.y_train) <= small.mse(
            ds.x_train, ds.y_train
        ) * 1.1

    def test_device_time_charged(self, medium_dataset):
        ds = medium_dataset
        dev = titan_xp()
        Falkon(
            GaussianKernel(bandwidth=2.5), n_centers=100, reg_lambda=1e-6,
            device=dev, seed=0,
        ).fit(ds.x_train, ds.y_train)
        assert dev.elapsed > 0

    def test_predict_before_fit(self, small_xy):
        x, _ = small_xy
        with pytest.raises(NotFittedError):
            Falkon(GaussianKernel(bandwidth=2.0)).predict(x)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_centers": 0},
            {"reg_lambda": 0.0},
            {"max_iters": 0},
            {"tol": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            Falkon(GaussianKernel(bandwidth=1.0), **kwargs)


class TestFalkonOnBackendLayer:
    """FALKON now dispatches through the backend layer (triangular factor
    applications via ``ArrayBackend.solve_triangular``), so it runs on any
    backend instance — including inside a shard executor."""

    def test_numpy_results_unchanged(self, small_xy):
        x, y = small_xy
        f = Falkon(
            GaussianKernel(bandwidth=2.0), n_centers=len(x),
            reg_lambda=1e-10, max_iters=200, seed=0,
        ).fit(x, y)
        assert f.mse(x, y) < 1e-6

    def test_runs_inside_a_shard_executor(self, small_xy):
        from repro.shard import ShardGroup

        x, y = small_xy
        ref = Falkon(
            GaussianKernel(bandwidth=2.0), n_centers=40, reg_lambda=1e-8,
            seed=0,
        ).fit(x, y)
        with ShardGroup.build(x, y, g=2) as group:
            models = group.map(
                lambda ex: Falkon(
                    GaussianKernel(bandwidth=2.0), n_centers=40,
                    reg_lambda=1e-8, seed=0,
                ).fit(x, y)
            )
        for f in models:
            np.testing.assert_allclose(
                np.asarray(f.model_.weights),
                np.asarray(ref.model_.weights),
                atol=1e-8,
            )

    @pytest.mark.skipif(
        importlib.util.find_spec("torch") is None,
        reason="torch not installed — Torch backend unavailable",
    )
    def test_matches_under_torch(self, small_xy):
        from repro.backend import use_backend

        x, y = small_xy
        ref = Falkon(
            GaussianKernel(bandwidth=2.0), n_centers=40, reg_lambda=1e-8,
            seed=0,
        ).fit(x, y)
        with use_backend("torch"):
            got = Falkon(
                GaussianKernel(bandwidth=2.0), n_centers=40,
                reg_lambda=1e-8, seed=0,
            ).fit(x, y)
            pred = got.predict(x)
        np.testing.assert_allclose(
            np.asarray(pred), np.asarray(ref.predict(x)), atol=1e-8
        )
        np.testing.assert_allclose(
            np.asarray(got.model_.weights),
            np.asarray(ref.model_.weights),
            atol=1e-6,
        )
