"""Tests for the plain-SGD and original-EigenPro baselines."""

import numpy as np
import pytest

from repro.baselines import EigenPro1, KernelSGD
from repro.core.cost import exact_original_overhead_ops
from repro.device import titan_xp
from repro.exceptions import ConfigurationError
from repro.instrument import meter_scope
from repro.kernels import GaussianKernel


class TestKernelSGDSetup:
    def test_auto_batch_is_critical_size(self, medium_dataset):
        """Plain SGD's automatic batch size is m*(k) — tiny (paper: < 10
        for practical kernels)."""
        ds = medium_dataset
        t = KernelSGD(GaussianKernel(bandwidth=2.5), seed=0)
        t.fit(ds.x_train, ds.y_train, epochs=1)
        assert t.batch_size_ == round(t.m_star_)
        assert t.batch_size_ < 30

    def test_exposes_spectral_estimates(self, medium_dataset):
        ds = medium_dataset
        t = KernelSGD(GaussianKernel(bandwidth=2.5), seed=0)
        t.fit(ds.x_train, ds.y_train, epochs=1)
        assert t.beta_ == 1.0
        assert t.lambda1_ > 0
        assert t.m_star_ == pytest.approx(t.beta_ / t.lambda1_)

    def test_converges_to_interpolation(self, small_xy):
        x, y = small_xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        t.fit(x, y, epochs=500, stop_train_mse=5e-5)
        assert t.mse(x, y) < 1e-4

    def test_large_batch_wastes_epochs(self, medium_dataset):
        """Beyond m*, increasing batch size does NOT reduce the number of
        epochs needed — the saturation phenomenon of Ma et al. 2017.
        With the same epoch budget, m >> m* leaves higher training loss
        per epoch count than m = m* (here: fewer, not-better updates)."""
        ds = medium_dataset
        kernel = GaussianKernel(bandwidth=2.5)
        at_mstar = KernelSGD(kernel, seed=0).fit(
            ds.x_train, ds.y_train, epochs=3
        )
        huge = KernelSGD(kernel, batch_size=400, seed=0).fit(
            ds.x_train, ds.y_train, epochs=3
        )
        assert at_mstar.mse(ds.x_train, ds.y_train) < huge.mse(
            ds.x_train, ds.y_train
        )


class TestEigenPro1:
    def test_converges(self, medium_dataset):
        ds = medium_dataset
        t = EigenPro1(GaussianKernel(bandwidth=2.5), q=60, seed=0)
        t.fit(ds.x_train, ds.y_train, epochs=8)
        assert t.mse(ds.x_train, ds.y_train) < 0.01

    def test_eigvec_representation_is_n_by_q(self, medium_dataset):
        """The defining (bad) property: the eigenvector representation is
        dense over all n points (Table 1's n*q memory)."""
        ds = medium_dataset
        t = EigenPro1(GaussianKernel(bandwidth=2.5), q=40, seed=0)
        t.fit(ds.x_train, ds.y_train, epochs=1)
        assert t.eigvecs_full_.shape == (ds.n_train, 40)

    def test_overhead_ops_scale_with_n(self, medium_dataset):
        ds = medium_dataset
        q = 30
        t = EigenPro1(
            GaussianKernel(bandwidth=2.5), q=q, batch_size=50, seed=0
        )
        with meter_scope() as meter:
            t.fit(ds.x_train, ds.y_train, epochs=1, max_iterations=1)
        expected = exact_original_overhead_ops(ds.n_train, 50, ds.l, q)
        assert meter.total("precond") == expected

    def test_device_memory_includes_nq(self, medium_dataset):
        ds = medium_dataset
        dev = titan_xp()
        t = EigenPro1(
            GaussianKernel(bandwidth=2.5), q=30, device=dev, batch_size=50,
            seed=0,
        )
        t.fit(ds.x_train, ds.y_train, epochs=1)
        n, d, l = ds.n_train, ds.d, ds.l
        assert dev.memory.peak == pytest.approx(n * (d + l + 50) + n * 30)

    def test_q_validation(self):
        with pytest.raises(ConfigurationError):
            EigenPro1(GaussianKernel(bandwidth=1.0), q=1)

    def test_faster_convergence_than_sgd_per_iteration(self, medium_dataset):
        """At the same batch size and iteration count, preconditioning
        must win (it's the same machinery as EigenPro 2.0)."""
        ds = medium_dataset
        kernel = GaussianKernel(bandwidth=2.5)
        m = 100
        ep1 = EigenPro1(kernel, q=60, batch_size=m, seed=0).fit(
            ds.x_train, ds.y_train, epochs=4
        )
        from repro.baselines import KernelSGD

        sgd = KernelSGD(kernel, batch_size=m, seed=0).fit(
            ds.x_train, ds.y_train, epochs=4
        )
        assert ep1.mse(ds.x_train, ds.y_train) < sgd.mse(
            ds.x_train, ds.y_train
        )

    def test_simulated_time_exceeds_eigenpro2(self, medium_dataset):
        """Per-iteration device time: original EigenPro charges the
        n-scaled overhead, the improved version the s-scaled one.  With
        identical batch size and epochs the original must cost more.

        On a Titan Xp this tiny problem is entirely latency-bound (every
        iteration fits in C_G — itself a faithful prediction of the
        model), so the comparison uses a small throughput-bound device
        where operation counts translate into time.
        """
        from repro.core.eigenpro2 import EigenPro2
        from repro.device import DeviceSpec, SimulatedDevice

        def tiny_device():
            return SimulatedDevice(
                DeviceSpec(
                    name="tiny", parallel_capacity=1e4, throughput=1e8,
                    memory_scalars=1e9,
                )
            )

        ds = medium_dataset
        kernel = GaussianKernel(bandwidth=2.5)
        dev1, dev2 = tiny_device(), tiny_device()
        EigenPro1(
            kernel, q=60, batch_size=100, device=dev1, seed=0
        ).fit(ds.x_train, ds.y_train, epochs=2)
        EigenPro2(
            kernel, q=60, s=200, batch_size=100, device=dev2, seed=0
        ).fit(ds.x_train, ds.y_train, epochs=2)
        assert dev1.elapsed > dev2.elapsed
