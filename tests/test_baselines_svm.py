"""Tests for the SVM baselines: SMO (LibSVM stand-in) and Pegasos."""

import numpy as np
import pytest

from repro.baselines import PegasosSVM, SMOSVM
from repro.data import MixtureSpec, make_mixture_classification
from repro.exceptions import ConfigurationError, NotFittedError
from repro.kernels import GaussianKernel


@pytest.fixture(scope="module")
def binary_ds():
    spec = MixtureSpec(
        n_classes=2, dim=6, n_clusters=1, separation=2.0, noise=0.5
    )
    return make_mixture_classification(
        "binary", 200, 100, spec, normalization="zscore", seed=5
    )


@pytest.fixture(scope="module")
def multi_ds(small_dataset):
    return small_dataset


class TestSMOBinary:
    def test_separable_problem_solved(self, binary_ds):
        ds = binary_ds
        svm = SMOSVM(GaussianKernel(bandwidth=2.0), c=10.0).fit(
            ds.x_train, ds.labels_train
        )
        assert svm.classification_error(ds.x_train, ds.labels_train) < 0.05
        assert svm.classification_error(ds.x_test, ds.labels_test) < 0.15
        assert all(svm.converged_)

    def test_dual_constraints_hold(self, binary_ds):
        """0 <= alpha <= C and sum alpha_i y_i = 0 (the SMO invariants)."""
        ds = binary_ds
        c = 3.0
        svm = SMOSVM(GaussianKernel(bandwidth=2.0), c=c).fit(
            ds.x_train, ds.labels_train
        )
        y_pm = np.where(ds.labels_train == 0, 1.0, -1.0)
        alpha = svm.dual_coef_[:, 0] * y_pm  # recover alpha >= 0
        assert (alpha >= -1e-9).all()
        assert (alpha <= c + 1e-9).all()
        assert abs(np.sum(svm.dual_coef_[:, 0])) < 1e-8

    def test_kkt_margins_satisfied(self, binary_ds):
        """Free support vectors sit on the margin: y f(x) ≈ 1."""
        ds = binary_ds
        c = 3.0
        svm = SMOSVM(GaussianKernel(bandwidth=2.0), c=c, tol=1e-4).fit(
            ds.x_train, ds.labels_train
        )
        y_pm = np.where(ds.labels_train == 0, 1.0, -1.0)
        alpha = svm.dual_coef_[:, 0] * y_pm
        decision = svm.decision_function(ds.x_train)[:, 0]
        free = (alpha > 1e-6) & (alpha < c - 1e-6)
        if free.any():
            margins = y_pm[free] * decision[free]
            np.testing.assert_allclose(margins, 1.0, atol=5e-3)

    def test_stats_populated(self, binary_ds):
        ds = binary_ds
        svm = SMOSVM(GaussianKernel(bandwidth=2.0)).fit(
            ds.x_train, ds.labels_train
        )
        assert svm.stats_.iterations > 0
        assert svm.stats_.kernel_rows > 0
        assert svm.total_ops() > 0

    def test_cache_limits_row_recomputation(self, binary_ds):
        """With a cache at least as large as n, every row is computed at
        most once."""
        ds = binary_ds
        svm = SMOSVM(
            GaussianKernel(bandwidth=2.0), cache_rows=len(ds.x_train)
        ).fit(ds.x_train, ds.labels_train)
        assert svm.stats_.kernel_rows <= len(ds.x_train)

    def test_max_iter_cap_respected(self, binary_ds):
        ds = binary_ds
        svm = SMOSVM(GaussianKernel(bandwidth=2.0), max_iter=5).fit(
            ds.x_train, ds.labels_train
        )
        assert svm.stats_.iterations <= 2 * 5  # two mirrored binary columns


class TestSMOMulticlass:
    def test_one_vs_rest(self, multi_ds):
        ds = multi_ds
        svm = SMOSVM(GaussianKernel(bandwidth=2.0), c=5.0).fit(
            ds.x_train, ds.labels_train
        )
        err = svm.classification_error(ds.x_test, ds.labels_test)
        assert err < 0.4  # 3 classes, chance = 2/3
        assert svm.dual_coef_.shape == (ds.n_train, 3)

    def test_accepts_one_hot(self, multi_ds):
        ds = multi_ds
        a = SMOSVM(GaussianKernel(bandwidth=2.0), max_iter=200).fit(
            ds.x_train, ds.labels_train
        )
        b = SMOSVM(GaussianKernel(bandwidth=2.0), max_iter=200).fit(
            ds.x_train, ds.y_train
        )
        np.testing.assert_allclose(a.dual_coef_, b.dual_coef_)

    def test_predict_before_fit(self, multi_ds):
        with pytest.raises(NotFittedError):
            SMOSVM(GaussianKernel(bandwidth=2.0)).predict_labels(
                multi_ds.x_test
            )

    @pytest.mark.parametrize(
        "kwargs",
        [{"c": 0.0}, {"tol": 0.0}, {"max_iter": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SMOSVM(GaussianKernel(bandwidth=1.0), **kwargs)


class TestPegasos:
    def test_learns_binary(self, binary_ds):
        ds = binary_ds
        svm = PegasosSVM(
            GaussianKernel(bandwidth=2.0), reg_lambda=1e-3, seed=0
        ).fit(ds.x_train, ds.labels_train, epochs=10)
        assert svm.classification_error(ds.x_test, ds.labels_test) < 0.2

    def test_learns_multiclass(self, multi_ds):
        ds = multi_ds
        svm = PegasosSVM(
            GaussianKernel(bandwidth=2.0), reg_lambda=1e-3, seed=0
        ).fit(ds.x_train, ds.labels_train, epochs=10)
        assert svm.classification_error(ds.x_test, ds.labels_test) < 0.4

    def test_more_epochs_not_worse_on_train(self, binary_ds):
        ds = binary_ds
        k = GaussianKernel(bandwidth=2.0)
        short = PegasosSVM(k, reg_lambda=1e-3, seed=0).fit(
            ds.x_train, ds.labels_train, epochs=1
        )
        long = PegasosSVM(k, reg_lambda=1e-3, seed=0).fit(
            ds.x_train, ds.labels_train, epochs=20
        )
        assert long.classification_error(
            ds.x_train, ds.labels_train
        ) <= short.classification_error(ds.x_train, ds.labels_train) + 0.02

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PegasosSVM(GaussianKernel(bandwidth=1.0), reg_lambda=0.0)
        with pytest.raises(ConfigurationError):
            PegasosSVM(GaussianKernel(bandwidth=1.0), batch_size=0)
        with pytest.raises(ConfigurationError):
            PegasosSVM(GaussianKernel(bandwidth=1.0)).fit(
                np.zeros((4, 2)), np.zeros(4, dtype=int), epochs=0
            )

    def test_predict_before_fit(self, binary_ds):
        with pytest.raises(NotFittedError):
            PegasosSVM(GaussianKernel(bandwidth=1.0)).predict(
                binary_ds.x_test
            )
