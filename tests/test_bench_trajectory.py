"""Tests for the bench-trajectory tooling (merge + regression gate).

``benchmarks/merge_trajectory.py`` and ``benchmarks/check_trajectory.py``
are standalone scripts (CI runs them by path); these tests import them
the same way the scripts import each other — with ``benchmarks/`` on
``sys.path`` — and pin the v2 history contract: entry extraction from
every payload kind, dedup-keep-latest by ``(commit, experiment,
transport)``, deterministic sort, and the trailing-median gate with its
min-points warning behavior.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

import check_trajectory  # noqa: E402
import merge_trajectory  # noqa: E402


def _shard_payload(transport="thread", measured=1.0, run_id=None):
    payload = {
        "name": f"shard-validation-{transport}",
        "transport": transport,
        "smoke": True,
        "rows": [
            {"transport": transport, "shards": 1, "measured_ms": measured * 2},
            {"transport": transport, "shards": 4, "measured_ms": measured},
        ],
    }
    if run_id is not None:
        payload["run_id"] = run_id
    return payload


def _entry(commit, experiment="shard-validation", transport="thread",
           value=1.0, generated_at="2026-01-01T00:00:00+00:00"):
    return {
        "experiment": experiment,
        "transport": transport,
        "metric": "measured_ms",
        "value": value,
        "context": {},
        "commit": commit,
        "generated_at": generated_at,
        "host": {"cpu_count": 1},
    }


class TestHistoryEntries:
    def test_raw_payload_uses_run_id_stamp(self):
        run_id = {
            "id": "abc",
            "started_at": "2026-02-03T04:05:06+00:00",
            "commit": "deadbeef",
        }
        (entry,) = merge_trajectory.history_entries(
            _shard_payload(run_id=run_id)
        )
        assert entry["experiment"] == "shard-validation"
        assert entry["transport"] == "thread"
        # Headline = the largest shard count's measured time.
        assert entry["value"] == 1.0
        assert entry["context"] == {"shards": 4}
        assert entry["commit"] == "deadbeef"
        assert entry["generated_at"] == "2026-02-03T04:05:06+00:00"

    def test_all_wrapper_unfolds_per_transport(self):
        wrapper = {
            "name": "shard-validation-all",
            "runs": [
                _shard_payload("thread"),
                _shard_payload("process", measured=3.0),
            ],
            "run_id": {"id": "x", "started_at": "t", "commit": "c1"},
        }
        entries = merge_trajectory.history_entries(wrapper)
        assert [(e["transport"], e["value"]) for e in entries] == [
            ("thread", 1.0),
            ("process", 3.0),
        ]

    def test_pipeline_payload_keys_by_engine(self):
        payload = {
            "benchmark": "pipeline-overlap",
            "run_id": {"id": "x", "started_at": "t", "commit": "c1"},
            "rows": [
                {"engine": "single", "pipelined_ms_per_iter": 5.0,
                 "speedup": 1.0},
                {"engine": "sharded-g2", "pipelined_ms_per_iter": 3.0,
                 "speedup": 1.4},
            ],
        }
        entries = merge_trajectory.history_entries(payload)
        assert {(e["experiment"], e["transport"]) for e in entries} == {
            ("pipeline-overlap", "single"),
            ("pipeline-overlap", "sharded-g2"),
        }

    def test_v2_history_passes_through(self):
        history = {
            "schema": merge_trajectory.SCHEMA,
            "entries": [_entry("c1"), _entry("c2")],
        }
        assert merge_trajectory.history_entries(history) == history["entries"]

    def test_v1_snapshot_unfolds_with_provenance(self):
        v1 = {
            "schema": merge_trajectory.SCHEMA_V1,
            "commit": "oldsha",
            "generated_at": "2026-01-01T00:00:00+00:00",
            "host": {"cpu_count": 2},
            "benchmarks": {"shard-validation": _shard_payload()},
        }
        (entry,) = merge_trajectory.history_entries(v1)
        assert entry["commit"] == "oldsha"
        assert entry["host"] == {"cpu_count": 2}


class TestMergeEntries:
    def test_dedupe_keeps_latest_generated_at(self):
        stale = _entry("c1", value=9.0, generated_at="2026-01-01T00:00:00+00:00")
        fresh = _entry("c1", value=1.0, generated_at="2026-01-02T00:00:00+00:00")
        merged = merge_trajectory.merge_entries([[stale], [fresh]])
        assert merged == [fresh]
        # Input order must not matter.
        assert merge_trajectory.merge_entries([[fresh], [stale]]) == [fresh]

    def test_sort_is_deterministic(self):
        entries = [
            _entry("c2", transport="thread", generated_at="2026-01-02T00:00:00+00:00"),
            _entry("c1", experiment="failure-injection", transport="process"),
            _entry("c1", transport="thread"),
        ]
        merged = merge_trajectory.merge_entries([entries])
        keys = [
            (e["experiment"], e["transport"], e["generated_at"])
            for e in merged
        ]
        assert keys == sorted(keys)
        assert merged == merge_trajectory.merge_entries([entries[::-1]])

    def test_cli_round_trip(self, tmp_path):
        """The script end-to-end: merging the committed history with a
        fresh payload re-emits valid v2 that merges idempotently."""
        payload_path = tmp_path / "shard.json"
        payload_path.write_text(json.dumps(_shard_payload(
            run_id={"id": "i", "started_at": "2026-03-01T00:00:00+00:00",
                    "commit": "newsha"},
        )))
        out = tmp_path / "merged.json"
        proc = subprocess.run(
            [sys.executable, str(BENCHMARKS / "merge_trajectory.py"),
             "--out", str(out), str(payload_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        merged = json.loads(out.read_text())
        assert merged["schema"] == merge_trajectory.SCHEMA
        # Idempotent: merging the output with itself changes nothing.
        out2 = tmp_path / "merged2.json"
        subprocess.run(
            [sys.executable, str(BENCHMARKS / "merge_trajectory.py"),
             "--out", str(out2), str(out), str(out)],
            capture_output=True, text=True, check=True,
        )
        assert json.loads(out2.read_text()) == merged


class TestCheckSeries:
    def _history(self, values, commit_prefix="h"):
        return [
            _entry(
                f"{commit_prefix}{i}",
                value=v,
                generated_at=f"2026-01-{i + 1:02d}T00:00:00+00:00",
            )
            for i, v in enumerate(values)
        ]

    def test_regression_fails(self):
        failures, warnings, passes = check_trajectory.check_series(
            self._history([1.0, 1.0, 1.0]),
            [_entry("cur", value=1.5)],
        )
        assert len(failures) == 1 and not passes
        assert "1.50x" in failures[0]

    def test_within_tolerance_passes(self):
        failures, warnings, passes = check_trajectory.check_series(
            self._history([1.0, 1.0, 1.0]),
            [_entry("cur", value=1.2)],
        )
        assert not failures and len(passes) == 1

    def test_median_is_robust_to_one_outlier(self):
        failures, _, passes = check_trajectory.check_series(
            self._history([1.0, 1.0, 100.0]),
            [_entry("cur", value=1.2)],
        )
        assert not failures and passes

    def test_too_few_points_warns_not_fails(self):
        failures, warnings, passes = check_trajectory.check_series(
            self._history([1.0, 1.0]),
            [_entry("cur", value=50.0)],
        )
        assert not failures and not passes
        assert len(warnings) == 1 and "not gated" in warnings[0]

    def test_same_commit_points_excluded_from_baseline(self):
        """Re-running CI on one commit never compares against itself."""
        history = self._history([1.0, 1.0]) + [_entry("cur", value=9.0)]
        failures, warnings, _ = check_trajectory.check_series(
            history, [_entry("cur", value=9.0)]
        )
        # The same-commit point is dropped: 2 usable points -> warn.
        assert not failures and len(warnings) == 1

    def test_window_limits_baseline_to_trailing_points(self):
        history = self._history([10.0] * 4 + [1.0] * 5)
        failures, _, passes = check_trajectory.check_series(
            history, [_entry("cur", value=1.1)], window=5
        )
        assert not failures and passes

    def test_missing_value_warns(self):
        failures, warnings, _ = check_trajectory.check_series(
            self._history([1.0] * 3),
            [_entry("cur", value=None)],
        )
        assert not failures and len(warnings) == 1

    def test_cli_exit_codes(self, tmp_path):
        history_path = tmp_path / "history.json"
        history_path.write_text(json.dumps({
            "schema": merge_trajectory.SCHEMA,
            "entries": self._history([1.0, 1.0, 1.0]),
        }))
        current = tmp_path / "current.json"
        current.write_text(json.dumps({
            "schema": merge_trajectory.SCHEMA,
            "entries": [_entry("cur", value=5.0)],
        }))
        proc = subprocess.run(
            [sys.executable, str(BENCHMARKS / "check_trajectory.py"),
             "--history", str(history_path), str(current)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stderr
        ok = tmp_path / "ok.json"
        ok.write_text(json.dumps({
            "schema": merge_trajectory.SCHEMA,
            "entries": [_entry("cur", value=1.05)],
        }))
        proc = subprocess.run(
            [sys.executable, str(BENCHMARKS / "check_trajectory.py"),
             "--history", str(history_path), str(ok)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ok:" in proc.stdout
