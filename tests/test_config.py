"""Tests for global configuration helpers."""

import numpy as np
import pytest

from repro.config import DEFAULT_DTYPE, resolve_dtype


class TestResolveDtype:
    def test_default(self):
        assert resolve_dtype(None) == DEFAULT_DTYPE

    def test_float32_accepted(self):
        assert resolve_dtype(np.float32) == np.dtype(np.float32)
        assert resolve_dtype("float32") == np.dtype(np.float32)

    def test_non_float_rejected(self):
        with pytest.raises(TypeError, match="floating"):
            resolve_dtype(np.int64)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            resolve_dtype("not-a-dtype")


class TestFloat32Path:
    """The paper trains in float32 on the GPU; the kernel layer must
    support it end to end."""

    def test_kernel_matrix_float32(self, rng):
        from repro.kernels import GaussianKernel

        k = GaussianKernel(bandwidth=2.0, dtype=np.float32)
        x = rng.standard_normal((20, 4))
        out = k(x, x)
        assert out.dtype == np.float32
        k64 = GaussianKernel(bandwidth=2.0)
        np.testing.assert_allclose(out, k64(x, x), atol=1e-5)

    def test_training_with_float32_kernel(self, small_xy):
        from repro.baselines import KernelSGD
        from repro.kernels import GaussianKernel

        x, y = small_xy
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0, dtype=np.float32),
            batch_size=8, seed=0,
        )
        t.fit(x, y, epochs=30)
        assert t.mse(x, y) < 0.05
