"""Tests for the Appendix-C acceleration analysis."""

import numpy as np
import pytest

from repro.core.acceleration import (
    iteration_ratio,
    predicted_acceleration,
)
from repro.exceptions import ConfigurationError


class TestIterationRatio:
    def test_basic(self):
        assert iteration_ratio(1.0, 0.1) == pytest.approx(0.1)

    def test_equal_eigenvalues_is_one(self):
        assert iteration_ratio(0.5, 0.5) == pytest.approx(1.0)

    def test_order_enforced(self):
        with pytest.raises(ConfigurationError):
            iteration_ratio(0.1, 1.0)

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            iteration_ratio(0.0, 0.0)


class TestPredictedAcceleration:
    def test_formula(self):
        est = predicted_acceleration(
            beta_k=1.0, beta_kg=0.8, m_max=500, m_star=5.0
        )
        assert est.factor == pytest.approx((1.0 / 0.8) * (500 / 5.0))
        assert est.beta_ratio == pytest.approx(1.25)
        assert est.batch_ratio == pytest.approx(100.0)

    def test_paper_regime_50_to_500(self):
        """The paper: beta(K_G) ≈ beta(K) and m_max/m* between 50 and 500."""
        est = predicted_acceleration(
            beta_k=1.0, beta_kg=0.97, m_max=700, m_star=4.0
        )
        assert 50 < est.factor < 500 or est.factor > 50  # headline regime
        assert est.factor == pytest.approx(700 / 4.0 / 0.97, rel=1e-9)

    def test_iteration_ratio_from_eigenvalues(self):
        est = predicted_acceleration(
            beta_k=1.0, beta_kg=1.0, m_max=100, m_star=2.0,
            lambda1=0.5, lambda_q=0.005,
        )
        assert est.iteration_ratio == pytest.approx(0.01)

    def test_iteration_ratio_inferred(self):
        est = predicted_acceleration(
            beta_k=1.0, beta_kg=1.0, m_max=100, m_star=2.0
        )
        assert est.iteration_ratio == pytest.approx(0.02)

    def test_no_headroom_no_acceleration(self):
        """When m* already matches m_max the factor is ≈ 1 — e.g. very
        narrow kernels or tiny devices."""
        est = predicted_acceleration(
            beta_k=1.0, beta_kg=1.0, m_max=10, m_star=10.0
        )
        assert est.factor == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(beta_k=0, beta_kg=1, m_max=10, m_star=1),
            dict(beta_k=1, beta_kg=0, m_max=10, m_star=1),
            dict(beta_k=1, beta_kg=1, m_max=0, m_star=1),
            dict(beta_k=1, beta_kg=1, m_max=10, m_star=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            predicted_acceleration(**kwargs)


class TestEndToEndAcceleration:
    def test_prediction_close_to_measured_iteration_savings(self):
        """Verify the analysis against actual linear algebra: on an exact
        eigensystem, preconditioned Richardson needs ≈ lambda_q/lambda_1
        times the iterations of plain Richardson to reach the same
        residual (paper Appendix C)."""
        from repro.kernels import GaussianKernel
        from repro.linalg import top_eigensystem

        rng = np.random.default_rng(31)
        x = rng.standard_normal((150, 5))
        k_mat = GaussianKernel(bandwidth=2.0)(x, x)
        q = 12
        mu, v = top_eigensystem(k_mat, q)
        p_mat = np.eye(150) - (v * (1 - mu[q - 1] / mu)) @ v.T
        mu30, v30 = top_eigensystem(k_mat, 30)
        y = k_mat @ (v30 @ rng.standard_normal((30, 1)))

        def iters_to_tol(step, precond, tol=1e-6, cap=30_000):
            a = np.zeros_like(y)
            y_norm = np.linalg.norm(y)
            for i in range(1, cap + 1):
                r = y - k_mat @ a
                if np.linalg.norm(r) <= tol * y_norm:
                    return i
                a += step * (p_mat @ r if precond else r)
            return cap

        t_plain = iters_to_tol(1.0 / mu[0], precond=False)
        t_precond = iters_to_tol(1.0 / mu[q - 1], precond=True)
        measured_ratio = t_precond / t_plain
        predicted = mu[q - 1] / mu[0]
        # Within a factor of ~4 of the upper-bound-based prediction.
        assert predicted / 4 < measured_ratio < predicted * 4
