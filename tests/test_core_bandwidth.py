"""Tests for cross-validated bandwidth selection (Appendix B)."""

import numpy as np
import pytest

from repro.core.bandwidth import (
    default_bandwidth_grid,
    select_bandwidth,
)
from repro.data import MixtureSpec, make_mixture_classification
from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel, LaplacianKernel


@pytest.fixture(scope="module")
def cls_data():
    spec = MixtureSpec(
        n_classes=3, dim=10, n_clusters=2, separation=1.2, noise=0.4
    )
    return make_mixture_classification(
        "bw-test", 300, 100, spec, normalization="zscore", seed=7
    )


class TestDefaultGrid:
    def test_grid_spans_median(self, rng):
        x = rng.standard_normal((200, 5))
        grid = default_bandwidth_grid(x, n_points=7, seed=0)
        assert len(grid) == 7
        assert all(b > 0 for b in grid)
        assert grid[0] < grid[-1]
        # The median pairwise distance for 5-d standard normals is ~3.
        assert grid[0] < 3.0 < grid[-1]

    def test_geometric_spacing(self, rng):
        x = rng.standard_normal((100, 4))
        grid = default_bandwidth_grid(x, n_points=5, seed=0)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-9)

    def test_degenerate_data(self):
        grid = default_bandwidth_grid(np.zeros((10, 3)))
        assert all(np.isfinite(b) and b > 0 for b in grid)


class TestSelectBandwidth:
    def test_picks_sensible_bandwidth(self, cls_data):
        ds = cls_data
        sel = select_bandwidth(
            GaussianKernel, ds.x_train, ds.labels_train,
            bandwidths=(0.01, 0.1, 1.0, 3.0, 10.0, 1000.0),
            subsample=300, seed=0,
        )
        # Extremes must lose: 0.01 memorizes nothing (near-identity K),
        # 1000 is nearly constant.
        assert sel.bandwidth in (1.0, 3.0, 10.0)
        assert sel.task == "classification"
        assert sel.scores[sel.bandwidth] == min(sel.scores.values())

    def test_accepts_one_hot(self, cls_data):
        ds = cls_data
        a = select_bandwidth(
            GaussianKernel, ds.x_train, ds.y_train,
            bandwidths=(1.0, 5.0), subsample=200, seed=0,
        )
        b = select_bandwidth(
            GaussianKernel, ds.x_train, ds.labels_train,
            bandwidths=(1.0, 5.0), subsample=200, seed=0,
        )
        assert a.bandwidth == b.bandwidth
        assert a.task == b.task == "classification"

    def test_regression_task(self, rng):
        x = rng.standard_normal((200, 4))
        y = np.sin(x[:, 0]) + 0.1 * rng.standard_normal(200)
        sel = select_bandwidth(
            GaussianKernel, x, y, bandwidths=(0.01, 2.0, 100.0),
            subsample=200, seed=0,
        )
        assert sel.task == "regression"
        # The near-diagonal degenerate bandwidth must lose decisively.
        assert sel.bandwidth != 0.01
        assert sel.scores[0.01] > 2 * sel.scores[sel.bandwidth]

    def test_laplacian_kernel_class(self, cls_data):
        ds = cls_data
        sel = select_bandwidth(
            LaplacianKernel, ds.x_train, ds.labels_train,
            bandwidths=(1.0, 4.0, 16.0), subsample=200, seed=0,
        )
        assert sel.bandwidth in (1.0, 4.0, 16.0)

    def test_default_grid_used(self, cls_data):
        ds = cls_data
        sel = select_bandwidth(
            GaussianKernel, ds.x_train, ds.labels_train,
            subsample=150, seed=0,
        )
        assert len(sel.scores) >= 2

    def test_subsample_cap(self, cls_data):
        """Selection must only touch `subsample` points — verified by
        requesting more points than exist (allowed, capped)."""
        ds = cls_data
        sel = select_bandwidth(
            GaussianKernel, ds.x_train, ds.labels_train,
            bandwidths=(1.0, 5.0), subsample=10_000, seed=0,
        )
        assert sel.bandwidth in (1.0, 5.0)

    def test_validation(self, cls_data):
        ds = cls_data
        with pytest.raises(ConfigurationError):
            select_bandwidth(
                GaussianKernel, ds.x_train, ds.labels_train, n_folds=1
            )
        with pytest.raises(ConfigurationError):
            select_bandwidth(
                GaussianKernel, ds.x_train, ds.labels_train,
                subsample=4, n_folds=3,
            )
        with pytest.raises(ConfigurationError):
            select_bandwidth(
                GaussianKernel, ds.x_train, ds.labels_train,
                bandwidths=(), subsample=100,
            )

    def test_deterministic(self, cls_data):
        ds = cls_data
        a = select_bandwidth(
            GaussianKernel, ds.x_train, ds.labels_train,
            bandwidths=(1.0, 3.0), subsample=150, seed=9,
        )
        b = select_bandwidth(
            GaussianKernel, ds.x_train, ds.labels_train,
            bandwidths=(1.0, 3.0), subsample=150, seed=9,
        )
        assert a.scores == b.scores
