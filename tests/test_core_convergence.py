"""Tests for the analytic convergence-rate bounds (the Figure-1 math)."""

import math

import numpy as np
import pytest

from repro.core.convergence import (
    convergence_rate_bound,
    iterations_to_accuracy,
    per_iteration_gain,
)
from repro.exceptions import ConfigurationError


class TestRateBound:
    def test_in_unit_interval(self):
        for m in (1, 5, 100, 10_000):
            g = convergence_rate_bound(m, beta=1.0, lambda_1=0.3, lambda_n=1e-4)
            assert 0.0 <= g < 1.0

    def test_linear_scaling_regime(self):
        """gain(m) ≈ m * gain(1) for m << m* = beta/lambda_1."""
        beta, lam1, lamn = 1.0, 1e-3, 1e-6  # m* = 1000
        g1 = per_iteration_gain(1, beta, lam1, lamn)
        g10 = per_iteration_gain(10, beta, lam1, lamn)
        assert g10 == pytest.approx(10 * g1, rel=0.02)

    def test_saturation_regime(self):
        """gain(m) -> lambda_n / lambda_1 for m >> m*."""
        beta, lam1, lamn = 1.0, 0.1, 1e-4
        g_inf = per_iteration_gain(10**7, beta, lam1, lamn)
        assert g_inf == pytest.approx(lamn / lam1, rel=1e-3)

    def test_monotone_nondecreasing_in_m(self):
        beta, lam1, lamn = 1.0, 0.05, 1e-5
        gains = [
            per_iteration_gain(m, beta, lam1, lamn)
            for m in (1, 2, 4, 8, 16, 1024, 10**6)
        ]
        assert all(b >= a - 1e-15 for a, b in zip(gains, gains[1:]))

    def test_flattening_spectrum_improves_rate(self):
        """Replacing lambda_1 by lambda_q < lambda_1 strictly increases
        the per-iteration gain at every m > 1 — the adaptive kernel."""
        beta, lamn = 1.0, 1e-6
        for m in (10, 100, 1000):
            original = per_iteration_gain(m, beta, 0.3, lamn)
            adaptive = per_iteration_gain(m, beta, 0.003, lamn)
            assert adaptive > original

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(m=0, beta=1.0, lambda_1=0.1, lambda_n=0.01),
            dict(m=1, beta=0.0, lambda_1=0.1, lambda_n=0.01),
            dict(m=1, beta=1.0, lambda_1=0.01, lambda_n=0.1),  # misordered
            dict(m=1, beta=1.0, lambda_1=2.0, lambda_n=0.1),  # lam1 > beta
            dict(m=1, beta=1.0, lambda_1=0.1, lambda_n=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            convergence_rate_bound(**kwargs)


class TestIterationsToAccuracy:
    def test_appendix_c_proportionality(self):
        """t ≈ log(eps) * lambda_1/lambda_n for the original kernel at
        large n (Appendix C)."""
        beta, lam1, lamn = 1.0, 0.2, 1e-5
        t = iterations_to_accuracy(1e-3, m=10**7, beta=beta,
                                   lambda_1=lam1, lambda_n=lamn)
        expected = math.log(1e-3) / math.log(1 - lamn / lam1)
        assert t == pytest.approx(expected, rel=1e-5)

    def test_adaptive_kernel_needs_lambda_ratio_fraction(self):
        """Iterations ratio adaptive/original ≈ lambda_q/lambda_1 — the
        Appendix-C iteration-count comparison."""
        beta, lamn = 1.0, 1e-6
        lam1, lamq = 0.3, 0.003
        big_m = 10**8
        t_orig = iterations_to_accuracy(1e-4, big_m, beta, lam1, lamn)
        t_adap = iterations_to_accuracy(1e-4, big_m, beta, lamq, lamn)
        assert t_adap / t_orig == pytest.approx(lamq / lam1, rel=0.01)

    def test_more_accuracy_more_iterations(self):
        args = dict(m=100, beta=1.0, lambda_1=0.1, lambda_n=1e-4)
        assert iterations_to_accuracy(1e-6, **args) > iterations_to_accuracy(
            1e-2, **args
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            iterations_to_accuracy(1.5, 1, 1.0, 0.1, 0.01)

    def test_bound_tracks_measured_trainer(self):
        """End-to-end: the bound's iteration count for plain SGD is within
        an order of magnitude of the measured count on real data (bounds
        are upper bounds, so measured <= ~bound)."""
        from repro.baselines import KernelSGD
        from repro.core.spectrum import (
            estimate_beta,
            estimate_lambda1_operator,
        )
        from repro.data import make_rkhs_regression
        from repro.kernels import GaussianKernel
        from repro.linalg import nystrom_extension

        kernel = GaussianKernel(bandwidth=2.0)
        xt, yt, _, _ = make_rkhs_regression(kernel, 300, 10, 4, seed=3)
        beta = estimate_beta(kernel, xt)
        ext = nystrom_extension(kernel, xt, 300, 40, indices=np.arange(300))
        lam1 = float(ext.operator_eigenvalues[0])
        lam_tail = float(ext.operator_eigenvalues[-1])

        trainer = KernelSGD(kernel, batch_size=8, seed=0)
        trainer.fit(
            xt, yt, epochs=5000, stop_train_mse=1e-5, max_iterations=200_000
        )
        measured = trainer.history_.final.iterations
        # Error contraction: initial mse -> 1e-5.
        initial = float(np.mean(yt**2))
        eps = 1e-5 / initial
        bound = iterations_to_accuracy(eps, 8, beta, lam1, lam_tail)
        assert measured <= bound * 2
        assert measured >= bound / 200  # not absurdly loose either
