"""Tests for the Table-1 cost model and Step-1 resource computation."""

import math

import pytest

from repro.core.cost import (
    exact_improved_overhead_ops,
    exact_original_overhead_ops,
    exact_sgd_ops,
    improved_eigenpro_cost,
    original_eigenpro_cost,
    overhead_fraction,
    sgd_cost,
)
from repro.core.resource import max_device_batch_size
from repro.device import DeviceSpec, titan_xp
from repro.exceptions import ConfigurationError

PAPER_EXAMPLE = dict(n=10**6, m=10**3, d=10**3, l=10**2, s=10**4, q=10**2)


class TestCostFormulas:
    def test_sgd(self):
        c = sgd_cost(n=100, m=10, d=5, l=2)
        assert c.computation == 100 * 10 * 7
        assert c.memory == 100 * (10 + 5 + 2)
        assert c.overhead_computation == 0

    def test_improved(self):
        c = improved_eigenpro_cost(n=100, m=10, d=5, l=2, s=20, q=4)
        assert c.overhead_computation == 20 * 10 * 4
        assert c.overhead_memory == 20 * 4
        assert c.computation == sgd_cost(100, 10, 5, 2).computation + 800

    def test_original(self):
        c = original_eigenpro_cost(n=100, m=10, d=5, l=2, q=4)
        assert c.overhead_computation == 100 * 10 * 4
        assert c.overhead_memory == 100 * 4

    def test_improved_beats_original_when_s_below_n(self):
        imp = improved_eigenpro_cost(**PAPER_EXAMPLE)
        orig = original_eigenpro_cost(
            n=PAPER_EXAMPLE["n"], m=PAPER_EXAMPLE["m"], d=PAPER_EXAMPLE["d"],
            l=PAPER_EXAMPLE["l"], q=PAPER_EXAMPLE["q"],
        )
        ratio = orig.overhead_computation / imp.overhead_computation
        assert ratio == pytest.approx(PAPER_EXAMPLE["n"] / PAPER_EXAMPLE["s"])

    def test_paper_realistic_overhead_below_one_percent(self):
        """Section 4's headline: at n=1e6, s=1e4, d,m~1e3, q,l~1e2 the
        improved overhead is < 1 % over SGD in computation and memory."""
        frac = overhead_fraction(**PAPER_EXAMPLE)
        assert frac < 0.01
        imp = improved_eigenpro_cost(**PAPER_EXAMPLE)
        base = sgd_cost(
            PAPER_EXAMPLE["n"], PAPER_EXAMPLE["m"], PAPER_EXAMPLE["d"],
            PAPER_EXAMPLE["l"],
        )
        assert imp.overhead_memory / base.memory < 0.01

    def test_original_overhead_not_negligible(self):
        """Same sizes: the *original* EigenPro overhead is ~10 %, which is
        why Section 4 exists."""
        orig = original_eigenpro_cost(
            n=PAPER_EXAMPLE["n"], m=PAPER_EXAMPLE["m"], d=PAPER_EXAMPLE["d"],
            l=PAPER_EXAMPLE["l"], q=PAPER_EXAMPLE["q"],
        )
        base = sgd_cost(
            PAPER_EXAMPLE["n"], PAPER_EXAMPLE["m"], PAPER_EXAMPLE["d"],
            PAPER_EXAMPLE["l"],
        )
        assert orig.overhead_computation / base.computation > 0.05

    def test_negative_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            sgd_cost(-1, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            improved_eigenpro_cost(1, 1, 1, 1, -1, 1)

    def test_exact_formulas(self):
        assert exact_sgd_ops(100, 5, 3, 2) == 5 * 100 * 3 + 5 * 100 * 2
        assert (
            exact_improved_overhead_ops(m=5, l=2, s=20, q=4)
            == 20 * 5 * 4 + 4 * 5 * 2 + 20 * 4 * 2
        )
        assert (
            exact_original_overhead_ops(n=100, m=5, l=2, q=4)
            == 100 * 5 * 4 + 4 * 5 * 2 + 100 * 4 * 2
        )


class TestStep1BatchSizes:
    def test_m_compute_formula(self):
        spec = DeviceSpec(
            name="t", parallel_capacity=1e9, throughput=1e12,
            memory_scalars=1e12,
        )
        res = max_device_batch_size(spec, n=1000, d=99, l=1)
        # (d + l) * m_C * n = C_G  =>  m_C = 1e9 / (100 * 1000) = 10000.
        assert res.m_compute == 10_000

    def test_m_memory_formula(self):
        spec = DeviceSpec(
            name="t", parallel_capacity=1e18, throughput=1e12,
            memory_scalars=1_000_000,
        )
        res = max_device_batch_size(spec, n=1000, d=300, l=100)
        # (d + l + m_S) * n = S_G  =>  m_S = 1e6/1e3 - 400 = 600.
        assert res.m_memory == 600
        assert not res.compute_bound

    def test_m_max_is_min(self):
        spec = DeviceSpec(
            name="t", parallel_capacity=1e8, throughput=1e12,
            memory_scalars=1e7,
        )
        res = max_device_batch_size(spec, n=1000, d=50, l=50)
        assert res.m_max == min(res.m_compute, res.m_memory, 1000)

    def test_clamped_by_n(self):
        res = max_device_batch_size(titan_xp(), n=100, d=5, l=2)
        assert res.m_max == 100
        assert res.clamped_by_n

    def test_titan_xp_timit_anchor(self):
        """Paper Section 5.2: m*(k_G) ≈ 6500 saturates the Titan Xp on the
        1e5-point TIMIT subsample."""
        res = max_device_batch_size(titan_xp(), n=100_000, d=440, l=144)
        assert 5000 < res.m_max < 8000
        assert res.compute_bound

    def test_preconditioner_memory_charged(self):
        spec = DeviceSpec(
            name="t", parallel_capacity=1e18, throughput=1e12,
            memory_scalars=1_000_000,
        )
        with_precond = max_device_batch_size(
            spec, n=1000, d=300, l=100, s=1000, q=100
        )
        without = max_device_batch_size(spec, n=1000, d=300, l=100)
        assert with_precond.m_memory == without.m_memory - 100

    def test_memory_fraction(self):
        spec = DeviceSpec(
            name="t", parallel_capacity=1e18, throughput=1e12,
            memory_scalars=1_000_000,
        )
        res = max_device_batch_size(spec, n=1000, d=100, l=100, memory_fraction=0.5)
        assert res.m_memory == 300

    def test_too_small_device_rejected(self):
        spec = DeviceSpec(
            name="tiny", parallel_capacity=1e9, throughput=1e12,
            memory_scalars=100,
        )
        with pytest.raises(ConfigurationError, match="cannot hold"):
            max_device_batch_size(spec, n=1000, d=100, l=10)

    def test_degenerate_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            max_device_batch_size(titan_xp(), n=0, d=10, l=1)

    def test_infinite_memory_device(self):
        spec = DeviceSpec(
            name="inf", parallel_capacity=1e9, throughput=1e12,
            memory_scalars=math.inf,
        )
        res = max_device_batch_size(spec, n=100, d=10, l=1)
        assert res.compute_bound
