"""Tests for the EigenPro 2.0 trainer and its automatic parameter selection."""

import math

import numpy as np
import pytest

from repro.core.eigenpro2 import (
    EigenPro2,
    default_q_max,
    default_subsample_size,
    select_parameters,
)
from repro.device import DeviceSpec, SimulatedDevice, titan_xp
from repro.exceptions import ConfigurationError
from repro.instrument import meter_scope
from repro.kernels import GaussianKernel, LaplacianKernel


class TestDefaults:
    def test_subsample_rule_matches_paper(self):
        """Section 5: s = 2e3 for n <= 1e5, s = 1.2e4 beyond."""
        assert default_subsample_size(50_000) == 2000
        assert default_subsample_size(100_000) == 2000
        assert default_subsample_size(100_001) == 12_000
        assert default_subsample_size(500) == 500  # capped at n

    def test_q_max_bounds(self):
        assert default_q_max(2000) == 300
        assert default_q_max(100) == 99
        with pytest.raises(ConfigurationError):
            default_subsample_size(0)
        with pytest.raises(ConfigurationError):
            default_q_max(0)


class TestSelectParameters:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(17)
        return rng.standard_normal((400, 10))

    def test_autoparams_complete(self, data):
        params, precond, ext = select_parameters(
            GaussianKernel(bandwidth=2.0), data, l=3, device=titan_xp(), seed=0
        )
        assert params.n == 400 and params.d == 10 and params.l == 3
        assert params.q_adjusted >= params.q
        assert params.m_max >= 1
        assert params.eta > 0
        assert params.beta_k == 1.0
        assert params.m_star_kg > params.m_star_k
        assert params.acceleration > 1

    def test_batch_size_is_m_max(self, data):
        params, _, _ = select_parameters(
            GaussianKernel(bandwidth=2.0), data, l=2, device=titan_xp(), seed=0
        )
        assert params.batch_size == min(params.m_max, 400)

    def test_small_device_small_batch(self, data):
        """A weaker device must get a smaller m_max and shallower q."""
        weak = SimulatedDevice(
            DeviceSpec(
                name="weak", parallel_capacity=1e5, throughput=1e9,
                memory_scalars=1e9,
            )
        )
        strong = titan_xp()
        p_weak, _, _ = select_parameters(
            GaussianKernel(bandwidth=2.0), data, l=2, device=weak, seed=0
        )
        p_strong, _, _ = select_parameters(
            GaussianKernel(bandwidth=2.0), data, l=2, device=strong, seed=0
        )
        assert p_weak.m_max <= p_strong.m_max
        assert p_weak.q <= p_strong.q

    def test_q_override(self, data):
        params, precond, _ = select_parameters(
            GaussianKernel(bandwidth=2.0), data, l=2, device=titan_xp(),
            q=7, seed=0,
        )
        assert params.q_adjusted == 7
        assert precond is not None and precond.q == 7

    def test_q_zero_disables_preconditioning(self, data):
        params, precond, _ = select_parameters(
            GaussianKernel(bandwidth=2.0), data, l=2, device=titan_xp(),
            q=0, seed=0,
        )
        assert precond is None
        assert params.lambda_q == params.lambda_1

    def test_eta_about_half_m_relationship(self, data):
        """At the adaptive operating point eta ≈ m/2 for normalized
        kernels (Table 4's pattern), modulo the m <= n clamp and the
        adjusted-q overshoot which only increases eta."""
        params, _, _ = select_parameters(
            GaussianKernel(bandwidth=2.0), data, l=2, device=titan_xp(), seed=0
        )
        assert params.eta >= 0.4 * params.batch_size

    def test_invalid_l(self, data):
        with pytest.raises(ConfigurationError):
            select_parameters(
                GaussianKernel(bandwidth=2.0), data, l=0, device=titan_xp()
            )


class TestEigenPro2Training:
    def test_fits_and_interpolates(self, medium_dataset):
        ds = medium_dataset
        model = EigenPro2(GaussianKernel(bandwidth=2.5), seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=10)
        assert model.mse(ds.x_train, ds.y_train) < 0.01
        err = model.classification_error(ds.x_test, ds.labels_test)
        assert err < 0.5

    def test_less_device_time_to_target_than_sgd(self, medium_dataset):
        """The paper's core claim (Figure 2): simulated device time to a
        train-MSE target is far smaller for EigenPro 2.0 than for plain
        SGD at SGD's own optimal batch size — each EigenPro 2.0 iteration
        costs the same device time as a tiny SGD iteration (both below
        the parallel capacity) but makes ~m_max/m* times the progress."""
        from repro.baselines import KernelSGD
        from repro.device import titan_xp

        ds = medium_dataset
        kernel = GaussianKernel(bandwidth=2.5)
        target = 1e-3
        dev2 = titan_xp()
        ep2 = EigenPro2(kernel, device=dev2, seed=0)
        ep2.fit(ds.x_train, ds.y_train, epochs=100, stop_train_mse=target)
        dev1 = titan_xp()
        sgd = KernelSGD(kernel, device=dev1, seed=0)
        sgd.fit(ds.x_train, ds.y_train, epochs=100, stop_train_mse=target)
        assert ep2.history_.final.train_mse < target
        assert sgd.history_.final.train_mse < target
        assert dev2.elapsed < dev1.elapsed / 3

    def test_params_exposed(self, medium_dataset):
        ds = medium_dataset
        model = EigenPro2(LaplacianKernel(bandwidth=5.0), seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=1)
        assert model.params_ is not None
        row = model.params_.as_row()
        assert row["kernel"] == "laplacian"
        assert "q (adjusted q)" in row

    def test_prepare_without_training(self, medium_dataset):
        ds = medium_dataset
        model = EigenPro2(GaussianKernel(bandwidth=2.5), seed=0)
        params = model.prepare(ds.x_train, l=ds.l)
        assert model.model_ is None  # nothing trained
        assert params.batch_size >= 1

    def test_device_memory_includes_preconditioner(self, medium_dataset):
        ds = medium_dataset
        dev = titan_xp()
        model = EigenPro2(GaussianKernel(bandwidth=2.5), device=dev, seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=1)
        n, d, l = ds.n_train, ds.d, ds.l
        m = model.batch_size_
        expected = n * (d + l + m) + model.preconditioner_.memory_scalars
        assert dev.memory.peak == pytest.approx(expected)

    def test_correction_ops_recorded(self, medium_dataset):
        ds = medium_dataset
        model = EigenPro2(GaussianKernel(bandwidth=2.5), seed=0)
        with meter_scope() as meter:
            model.fit(ds.x_train, ds.y_train, epochs=1)
        assert meter.total("precond") > 0
        assert meter.total("kernel_eval") > 0

    def test_explicit_batch_and_step(self, medium_dataset):
        ds = medium_dataset
        model = EigenPro2(
            GaussianKernel(bandwidth=2.5), batch_size=50, step_size=10.0,
            seed=0,
        )
        model.fit(ds.x_train, ds.y_train, epochs=1)
        assert model.batch_size_ == 50
        assert model.step_size_ == 10.0

    def test_stable_at_analytic_step_size(self, medium_dataset):
        """Full damping (1.0) must not diverge: train MSE stays finite and
        decreases."""
        ds = medium_dataset
        model = EigenPro2(GaussianKernel(bandwidth=2.5), damping=1.0, seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=5)
        series = model.history_.series("train_mse")
        assert all(np.isfinite(series))
        assert series[-1] < series[0]

    def test_multilabel_shapes(self, medium_dataset):
        ds = medium_dataset
        model = EigenPro2(GaussianKernel(bandwidth=2.5), seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=1)
        pred = model.predict(ds.x_test)
        assert pred.shape == (ds.n_test, ds.l)
        labels = model.predict_labels(ds.x_test)
        assert labels.shape == (ds.n_test,)
