"""Tests for the KernelModel container, label handling, and stopping rules."""

import numpy as np
import pytest

from repro.core.model import KernelModel, as_labels
from repro.core.stopping import TrainMSETarget, ValidationPlateau
from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel


class TestAsLabels:
    def test_integer_passthrough(self):
        labels = np.array([0, 2, 1])
        np.testing.assert_array_equal(as_labels(labels), labels)

    def test_one_hot_argmax(self):
        y = np.array([[0.1, 0.9], [0.8, 0.2]])
        np.testing.assert_array_equal(as_labels(y), [1, 0])

    def test_binary_pm_one(self):
        np.testing.assert_array_equal(
            as_labels(np.array([-1.0, 1.0, -0.5])), [0, 1, 0]
        )

    def test_binary_zero_one_scores(self):
        np.testing.assert_array_equal(
            as_labels(np.array([0.1, 0.9, 0.4])), [0, 1, 0]
        )

    def test_single_column_2d(self):
        np.testing.assert_array_equal(
            as_labels(np.array([[0.2], [0.8]])), [0, 1]
        )

    def test_rejects_3d(self):
        with pytest.raises(ConfigurationError):
            as_labels(np.zeros((2, 2, 2)))


class TestKernelModel:
    @pytest.fixture()
    def model(self, rng):
        centers = rng.standard_normal((25, 4))
        weights = rng.standard_normal((25, 3))
        return KernelModel(GaussianKernel(bandwidth=1.5), centers, weights)

    def test_predict_matches_direct_sum(self, model, rng):
        x = rng.standard_normal((10, 4))
        direct = model.kernel(x, model.centers) @ model.weights
        np.testing.assert_allclose(model.predict(x), direct, atol=1e-10)

    def test_1d_weights_promoted(self, rng):
        centers = rng.standard_normal((5, 2))
        m = KernelModel(GaussianKernel(bandwidth=1.0), centers, np.ones(5))
        assert m.weights.shape == (5, 1)
        assert m.n_outputs == 1

    def test_weight_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            KernelModel(
                GaussianKernel(bandwidth=1.0),
                rng.standard_normal((5, 2)),
                np.ones((4, 1)),
            )

    def test_mse_zero_on_own_predictions(self, model, rng):
        x = rng.standard_normal((8, 4))
        assert model.mse(x, model.predict(x)) == pytest.approx(0.0, abs=1e-18)

    def test_classification_error_range(self, model, rng):
        x = rng.standard_normal((20, 4))
        labels = rng.integers(0, 3, 20)
        err = model.classification_error(x, labels)
        assert 0.0 <= err <= 1.0

    def test_classification_error_accepts_one_hot(self, model, rng):
        x = rng.standard_normal((12, 4))
        labels = rng.integers(0, 3, 12)
        one_hot = np.eye(3)[labels]
        assert model.classification_error(
            x, labels
        ) == model.classification_error(x, one_hot)

    def test_rkhs_norm_positive(self, model):
        assert model.rkhs_norm_squared() > 0

    def test_rkhs_norm_zero_weights(self, rng):
        m = KernelModel(
            GaussianKernel(bandwidth=1.0),
            rng.standard_normal((5, 2)),
            np.zeros((5, 1)),
        )
        assert m.rkhs_norm_squared() == pytest.approx(0.0, abs=1e-15)


class TestTrainMSETarget:
    def test_stops_below_tol(self):
        stop = TrainMSETarget(tol=1e-3)
        assert not stop.should_stop(1e-2)
        assert stop.should_stop(1e-4)

    def test_none_never_stops(self):
        assert not TrainMSETarget(tol=1e-3).should_stop(None)

    def test_invalid_tol(self):
        with pytest.raises(ConfigurationError):
            TrainMSETarget(tol=0.0)


class TestValidationPlateau:
    def test_stops_after_patience(self):
        p = ValidationPlateau(patience=2)
        assert not p.update(0.5)
        assert not p.update(0.4)
        assert not p.update(0.4)  # stale 1
        assert p.update(0.41)  # stale 2 -> stop

    def test_improvement_resets(self):
        p = ValidationPlateau(patience=2)
        p.update(0.5)
        p.update(0.5)  # stale 1
        assert not p.update(0.3)  # improvement resets
        assert p.stale_epochs == 0

    def test_min_delta(self):
        p = ValidationPlateau(patience=1, min_delta=0.1)
        p.update(0.5)
        assert p.update(0.45)  # improvement below min_delta doesn't count

    def test_none_ignored(self):
        p = ValidationPlateau(patience=1)
        assert not p.update(None)
        assert not p.update(None)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ValidationPlateau(patience=0)
        with pytest.raises(ConfigurationError):
            ValidationPlateau(patience=1, min_delta=-1)
