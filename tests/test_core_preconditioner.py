"""Tests for the Nyström preconditioner — the heart of Algorithm 1.

The decisive checks are spectral: the explicit modified kernel ``k_G``
must (a) stay PSD, (b) have top operator eigenvalue ``lambda_q``, (c)
leave the bottom of the spectrum untouched, and (d) keep the same
interpolating solution as the original kernel.
"""

import numpy as np
import pytest

from repro.core.preconditioner import NystromPreconditioner
from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel
from repro.linalg import nystrom_extension, top_eigensystem


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(9)
    x = rng.standard_normal((200, 6))
    kernel = GaussianKernel(bandwidth=2.0)
    # Exact subsample = all data, so spectral statements are exact.
    ext = nystrom_extension(kernel, x, 200, 30, indices=np.arange(200))
    return kernel, x, ext


class TestConstruction:
    def test_d_scale_formula(self, setup):
        _, _, ext = setup
        p = NystromPreconditioner(ext, 10)
        sig = ext.eigvals[:10]
        expected = (1 - sig[9] / sig) / sig
        np.testing.assert_allclose(p.d_scale, expected, rtol=1e-12)
        assert p.d_scale[-1] == pytest.approx(0.0, abs=1e-15)

    def test_lambda_top(self, setup):
        _, _, ext = setup
        p = NystromPreconditioner(ext, 10)
        assert p.lambda_top == pytest.approx(ext.eigvals[9] / 200)

    def test_memory_scalars(self, setup):
        _, _, ext = setup
        p = NystromPreconditioner(ext, 8)
        assert p.memory_scalars == 200 * 8 + 16

    def test_q_bounds(self, setup):
        _, _, ext = setup
        with pytest.raises(ConfigurationError):
            NystromPreconditioner(ext, 0)
        with pytest.raises(ConfigurationError):
            NystromPreconditioner(ext, 31)


class TestModifiedKernelSpectrum:
    def test_top_eigenvalue_flattened_to_lambda_q(self, setup):
        """lambda_1(K_G) = lambda_q(K) — the defining property."""
        kernel, x, ext = setup
        q = 12
        p = NystromPreconditioner(ext, q)
        kg = p.modified_kernel(x, x)
        vals_g, _ = top_eigensystem(kg, 1)
        vals_k, _ = top_eigensystem(kernel(x, x), q)
        assert vals_g[0] == pytest.approx(vals_k[q - 1], rel=1e-6)

    def test_psd(self, setup):
        _, x, ext = setup
        p = NystromPreconditioner(ext, 15)
        kg = p.modified_kernel(x, x)
        eigs = np.linalg.eigvalsh((kg + kg.T) / 2)
        assert eigs.min() > -1e-8 * eigs.max()

    def test_tail_spectrum_untouched(self, setup):
        """Top-q eigenvalues all flatten to lambda_q; eigenvalues beyond q
        are unchanged (Eq. 6)."""
        kernel, x, ext = setup
        q = 10
        p = NystromPreconditioner(ext, q)
        vals_k, _ = top_eigensystem(kernel(x, x), 20)
        vals_g = np.linalg.eigvalsh(p.modified_kernel(x, x))[::-1]
        np.testing.assert_allclose(
            vals_g[:q], np.full(q, vals_k[q - 1]), rtol=1e-6
        )
        np.testing.assert_allclose(vals_g[q:20], vals_k[q:20], rtol=1e-5)

    def test_q1_is_identity(self, setup):
        kernel, x, ext = setup
        p = NystromPreconditioner(ext, 1)
        np.testing.assert_allclose(
            p.modified_kernel(x[:50], x[:50]),
            kernel(x[:50], x[:50]),
            atol=1e-10,
        )

    def test_modified_diag_matches_matrix(self, setup):
        _, x, ext = setup
        p = NystromPreconditioner(ext, 9)
        np.testing.assert_allclose(
            p.modified_diag(x[:40]),
            np.diag(p.modified_kernel(x[:40], x[:40])),
            atol=1e-10,
        )

    def test_beta_kg_close_to_beta_k(self, setup):
        """The paper's empirical note: beta(K_G) ≈ beta(K)."""
        _, x, ext = setup
        p = NystromPreconditioner(ext, 12)
        beta_kg = p.beta_kg(x)
        assert 0.5 < beta_kg <= 1.0 + 1e-9

    def test_critical_batch_size_raised(self, setup):
        """m*(k_G) = beta(K_G)/lambda_q >> m*(k) — the whole point."""
        _, x, ext = setup
        q = 20
        p = NystromPreconditioner(ext, q)
        m_star_orig = 1.0 / ext.operator_eigenvalues[0]
        m_star_new = p.beta_kg(x) / p.lambda_top
        assert m_star_new > 5 * m_star_orig


class TestCorrection:
    def test_shapes(self, setup):
        _, x, ext = setup
        p = NystromPreconditioner(ext, 7)
        phi = np.random.default_rng(0).standard_normal((13, 200))
        g = np.random.default_rng(1).standard_normal((13, 3))
        out = p.correction(phi, g)
        assert out.shape == (200, 3)

    def test_matches_dense_formula(self, setup):
        _, x, ext = setup
        q = 7
        p = NystromPreconditioner(ext, q)
        rng = np.random.default_rng(2)
        phi = rng.standard_normal((5, 200))
        g = rng.standard_normal((5, 2))
        v = ext.eigvecs[:, :q]
        d = np.diag(p.d_scale)
        expected = v @ d @ v.T @ phi.T @ g
        np.testing.assert_allclose(p.correction(phi, g), expected, atol=1e-10)

    def test_zero_residual_zero_correction(self, setup):
        _, _, ext = setup
        p = NystromPreconditioner(ext, 5)
        phi = np.ones((4, 200))
        out = p.correction(phi, np.zeros((4, 2)))
        np.testing.assert_array_equal(out, 0.0)

    def test_shape_validation(self, setup):
        _, _, ext = setup
        p = NystromPreconditioner(ext, 5)
        with pytest.raises(ConfigurationError):
            p.correction(np.zeros((4, 199)), np.zeros((4, 1)))
        with pytest.raises(ConfigurationError):
            p.correction(np.zeros((4, 200)), np.zeros((3, 1)))


class TestSolutionInvariance:
    """Remark 2.3: preconditioned gradient descent on ``P K alpha = P y``
    has the *same* unique solution ``K^{-1} y`` as the unpreconditioned
    problem — only faster.  The matrix preconditioner built from the exact
    eigensystem is ``P = I - sum_{i<=q} (1 - mu_q/mu_i) v_i v_i^T``.
    """

    @staticmethod
    def _p_matrix(k_mat, q):
        mu, v = top_eigensystem(k_mat, q)
        n = k_mat.shape[0]
        return np.eye(n) - (v * (1 - mu[q - 1] / mu)) @ v.T, mu

    def test_fixed_point_is_the_interpolant(self, setup):
        """PK is similar to a symmetric PD matrix, so gradient descent with
        gamma = 1/mu_q converges to the unique fixed point K^{-1} y: all
        eigenvalues of gamma*PK lie in (0, 1]."""
        kernel, x, _ = setup
        k_mat = kernel(x, x)
        q = 15
        p_mat, mu = self._p_matrix(k_mat, q)
        pk_eigs = np.linalg.eigvals(p_mat @ k_mat)
        assert np.abs(pk_eigs.imag).max() < 1e-8
        scaled = pk_eigs.real / mu[q - 1]
        assert scaled.max() < 1.0 + 1e-8  # stable
        assert scaled.min() > 0.0  # P invertible: same unique solution

    def test_converges_to_interpolant_on_reachable_target(self, setup):
        """For a target in the span of well-conditioned eigendirections,
        preconditioned GD reaches the exact interpolant's predictions."""
        kernel, x, _ = setup
        n = x.shape[0]
        k_mat = kernel(x, x)
        mu30, v30 = top_eigensystem(k_mat, 30)
        rng = np.random.default_rng(3)
        coef = v30 @ rng.standard_normal((30, 1))  # alpha* in top-30 span
        y = k_mat @ coef
        q = 15
        p_mat, mu = self._p_matrix(k_mat, q)
        gamma = 1.0 / mu[q - 1]
        alpha = np.zeros_like(y)
        for _ in range(800):
            alpha += gamma * (p_mat @ (y - k_mat @ alpha))
        test_pts = rng.standard_normal((30, 6))
        np.testing.assert_allclose(
            kernel(test_pts, x) @ alpha,
            kernel(test_pts, x) @ coef,
            atol=1e-6,
        )

    def test_preconditioning_accelerates(self, setup):
        """Same iteration count: the preconditioned residual is orders of
        magnitude smaller than plain gradient descent's — the Appendix-C
        mu_q/mu_1 iteration-ratio effect."""
        kernel, x, _ = setup
        k_mat = kernel(x, x)
        mu30, v30 = top_eigensystem(k_mat, 30)
        rng = np.random.default_rng(4)
        y = k_mat @ (v30 @ rng.standard_normal((30, 1)))
        q = 15
        p_mat, mu = self._p_matrix(k_mat, q)

        def run(step, precond, iters=60):
            a = np.zeros_like(y)
            for _ in range(iters):
                r = y - k_mat @ a
                a += step * (p_mat @ r if precond else r)
            return float(np.linalg.norm(k_mat @ a - y))

        plain = run(1.0 / mu[0], precond=False)
        fast = run(1.0 / mu[q - 1], precond=True)
        assert fast < plain / 10
