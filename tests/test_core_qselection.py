"""Tests for Step 2: the Eq.-7 q selection and the Appendix-B adjustment."""

import numpy as np
import pytest

from repro.core.preconditioner import NystromPreconditioner
from repro.core.qselection import (
    adjusted_q,
    beta_pq_table,
    m_star_pq_table,
    select_q,
)
from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel
from repro.linalg import nystrom_extension


@pytest.fixture(scope="module")
def ext():
    rng = np.random.default_rng(13)
    x = rng.standard_normal((250, 6))
    return nystrom_extension(
        GaussianKernel(bandwidth=2.0), x, 250, 40, indices=np.arange(250)
    )


class TestBetaTable:
    def test_values_positive_and_at_most_beta(self, ext):
        table = beta_pq_table(ext)
        assert (table > 0).all()
        assert (table <= 1.0 + 1e-9).all()

    def test_q1_equals_original_beta(self, ext):
        """P_1 is the identity, so beta(K_{P_1}) = beta(K) = 1."""
        table = beta_pq_table(ext)
        assert table[0] == pytest.approx(1.0, abs=1e-9)

    def test_matches_preconditioner_diag(self, ext):
        """The vectorized sweep must agree with the per-q explicit
        modified-kernel diagonal."""
        table = beta_pq_table(ext)
        for q in (3, 10, 25):
            p = NystromPreconditioner(ext, q)
            direct = float(np.max(p.modified_diag(ext.points)))
            assert table[q - 1] == pytest.approx(direct, rel=1e-9)

    def test_custom_eval_points(self, ext, rng):
        pts = rng.standard_normal((50, 6))
        table = beta_pq_table(ext, eval_x=pts)
        assert table.shape == (40,)
        assert (table > 0).all()


class TestMStarTable:
    def test_increasing_in_q(self, ext):
        """m*(k_{P_q}) grows as deeper modification flattens more of the
        spectrum (beta changes little, lambda_q decreases)."""
        table = m_star_pq_table(ext)
        finite = table[np.isfinite(table)]
        assert (np.diff(finite) > -1e-6 * finite[:-1]).all()

    def test_q1_matches_original_m_star(self, ext):
        table = m_star_pq_table(ext)
        m_star_k = 1.0 / ext.operator_eigenvalues[0]
        assert table[0] == pytest.approx(m_star_k, rel=1e-6)

    def test_formula(self, ext):
        beta_table = beta_pq_table(ext)
        table = m_star_pq_table(ext, beta_table=beta_table)
        lam = ext.operator_eigenvalues
        np.testing.assert_allclose(table, beta_table / lam, rtol=1e-9)


class TestSelectQ:
    def test_eq7_property(self, ext):
        """q is the largest index with m* <= m_max; q+1 violates it."""
        sel = select_q(ext, m_max=100)
        assert sel.m_star_table[sel.q - 1] <= 100
        if sel.q < 40:
            assert sel.m_star_table[sel.q] > 100

    def test_larger_m_max_larger_q(self, ext):
        q_small = select_q(ext, m_max=20).q
        q_large = select_q(ext, m_max=2000).q
        assert q_large >= q_small

    def test_tiny_m_max_gives_zero(self, ext):
        """If even the unmodified kernel's m* exceeds m_max there is
        nothing to do."""
        m_star_k = 1.0 / ext.operator_eigenvalues[0]
        sel = select_q(ext, m_max=max(1, int(m_star_k * 0.5)))
        assert sel.q == 0

    def test_hit_cap_flag(self, ext):
        sel = select_q(ext, m_max=10**9)
        assert sel.hit_cap
        assert sel.q == 40

    def test_invalid_m_max(self, ext):
        with pytest.raises(ConfigurationError):
            select_q(ext, m_max=0)


class TestAdjustedQ:
    def test_never_decreases(self, ext):
        for q in (1, 5, 20, 40):
            assert adjusted_q(ext, q) >= q

    def test_extends_to_significant_spectrum(self, ext):
        """With a tiny Eq.-7 q, the heuristic pulls in all directions with
        sigma_i >= tol * sigma_1."""
        q_adj = adjusted_q(ext, 1, decay_tol=1e-3)
        sig = ext.eigvals
        significant = int(np.sum(sig >= 1e-3 * sig[0]))
        assert q_adj == min(significant, ext.s // 2)

    def test_cap_fraction(self, ext):
        q_adj = adjusted_q(ext, 1, decay_tol=1e-12, cap_fraction=0.05)
        assert q_adj <= max(1, int(0.05 * ext.s))

    def test_validation(self, ext):
        with pytest.raises(ConfigurationError):
            adjusted_q(ext, -1)
        with pytest.raises(ConfigurationError):
            adjusted_q(ext, 1, decay_tol=1.5)
        with pytest.raises(ConfigurationError):
            adjusted_q(ext, 1, cap_fraction=0.0)
