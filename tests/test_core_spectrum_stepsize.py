"""Tests for spectrum estimation, m*(k), and the analytic step size."""

import numpy as np
import pytest

from repro.core.spectrum import (
    critical_batch_size,
    critical_batch_size_from_extension,
    estimate_beta,
    estimate_lambda1_operator,
)
from repro.core.stepsize import analytic_step_size, linear_scaling_step_size
from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel, LaplacianKernel, PolynomialKernel
from repro.linalg import nystrom_extension, top_eigensystem


@pytest.fixture(scope="module")
def cluster_data():
    rng = np.random.default_rng(21)
    return rng.standard_normal((400, 8))


class TestBeta:
    def test_normalized_kernel_is_one(self, cluster_data):
        assert estimate_beta(GaussianKernel(bandwidth=2.0), cluster_data) == 1.0

    def test_polynomial_beta_from_data(self, cluster_data):
        k = PolynomialKernel(degree=2, gamma=0.5, coef0=1.0)
        beta = estimate_beta(k, cluster_data, sample_size=None)
        assert beta == pytest.approx(float(np.max(k.diag(cluster_data))))

    def test_subsample_estimate_close(self, cluster_data):
        k = PolynomialKernel(degree=2, gamma=0.5, coef0=1.0)
        full = estimate_beta(k, cluster_data, sample_size=None)
        sub = estimate_beta(k, cluster_data, sample_size=200, seed=0)
        assert sub <= full + 1e-12
        assert sub > 0.3 * full


class TestLambda1:
    def test_matches_dense_on_full_sample(self, cluster_data):
        k = GaussianKernel(bandwidth=2.0)
        n = cluster_data.shape[0]
        dense, _ = top_eigensystem(k(cluster_data, cluster_data), 1)
        est = estimate_lambda1_operator(k, cluster_data, sample_size=n, seed=0)
        assert est == pytest.approx(dense[0] / n, rel=1e-6)

    def test_subsample_estimate_reasonable(self, cluster_data):
        k = GaussianKernel(bandwidth=2.0)
        n = cluster_data.shape[0]
        full = estimate_lambda1_operator(k, cluster_data, sample_size=n)
        sub = estimate_lambda1_operator(k, cluster_data, sample_size=100, seed=1)
        assert 0.5 * full < sub < 2.0 * full


class TestCriticalBatchSize:
    def test_small_for_practical_kernels(self, cluster_data):
        """The paper: m*(k) is 'typically quite small, less than 10'."""
        m_star = critical_batch_size(
            GaussianKernel(bandwidth=3.0), cluster_data, sample_size=400
        )
        assert 1 <= m_star < 20

    def test_laplacian_larger_than_gaussian(self, cluster_data):
        """Section 5.5 claim (2): the Laplacian's m* is typically larger —
        slower spectral decay."""
        m_g = critical_batch_size(
            GaussianKernel(bandwidth=3.0), cluster_data, sample_size=400
        )
        m_l = critical_batch_size(
            LaplacianKernel(bandwidth=3.0), cluster_data, sample_size=400
        )
        assert m_l > m_g

    def test_from_extension_consistent(self, cluster_data):
        k = GaussianKernel(bandwidth=2.0)
        ext = nystrom_extension(k, cluster_data, 400, 5, indices=np.arange(400))
        direct = critical_batch_size(k, cluster_data, sample_size=400, seed=0)
        via_ext = critical_batch_size_from_extension(ext, beta=1.0)
        assert via_ext == pytest.approx(direct, rel=1e-4)

    def test_narrow_bandwidth_increases_m_star(self, cluster_data):
        """A very narrow kernel is nearly diagonal: lambda_1 -> 1/n and
        m* grows toward n."""
        wide = critical_batch_size(
            GaussianKernel(bandwidth=5.0), cluster_data, sample_size=400
        )
        narrow = critical_batch_size(
            GaussianKernel(bandwidth=0.05), cluster_data, sample_size=400
        )
        assert narrow > 10 * wide


class TestStepSize:
    def test_small_batch_linear_scaling(self):
        """For m << m* the optimal step is ≈ m/beta — the linear scaling
        rule."""
        eta1 = analytic_step_size(1, beta=1.0, lambda1=1e-4)
        eta2 = analytic_step_size(2, beta=1.0, lambda1=1e-4)
        assert eta2 == pytest.approx(2 * eta1, rel=1e-3)
        assert eta1 == pytest.approx(linear_scaling_step_size(1, 1.0), rel=1e-3)

    def test_saturates_at_inverse_lambda(self):
        lam = 0.01
        eta_huge = analytic_step_size(10**7, beta=1.0, lambda1=lam)
        assert eta_huge == pytest.approx(1 / lam, rel=1e-2)

    def test_operating_point_eta_is_half_m(self):
        """At m = beta/lambda (the critical size) eta ≈ m/2 — Table 4's
        observed pattern for normalized kernels."""
        lam = 1e-3
        m = int(1.0 / lam)
        eta = analytic_step_size(m, beta=1.0, lambda1=lam)
        assert eta == pytest.approx(m / 2, rel=1e-2)

    def test_damping_scales(self):
        full = analytic_step_size(10, 1.0, 0.01)
        damped = analytic_step_size(10, 1.0, 0.01, damping=0.5)
        assert damped == pytest.approx(full / 2)

    def test_monotone_in_m(self):
        etas = [analytic_step_size(m, 1.0, 1e-3) for m in (1, 10, 100, 1000)]
        assert all(b > a for a, b in zip(etas, etas[1:]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(m=0, beta=1.0, lambda1=0.1),
            dict(m=1, beta=0.0, lambda1=0.1),
            dict(m=1, beta=1.0, lambda1=-0.1),
            dict(m=1, beta=1.0, lambda1=0.1, damping=0.0),
            dict(m=1, beta=1.0, lambda1=0.1, damping=1.5),
        ],
    )
    def test_invalid_args(self, kwargs):
        with pytest.raises(ConfigurationError):
            analytic_step_size(**kwargs)

    def test_linear_scaling_validation(self):
        with pytest.raises(ConfigurationError):
            linear_scaling_step_size(0, 1.0)
        with pytest.raises(ConfigurationError):
            linear_scaling_step_size(1, 0.0)
