"""Tests for the shared mini-batch training loop."""

import numpy as np
import pytest

from repro.baselines import KernelSGD
from repro.core.trainer import BaseKernelTrainer
from repro.device import titan_xp
from repro.exceptions import ConfigurationError, NotFittedError
from repro.kernels import GaussianKernel


@pytest.fixture()
def xy(small_xy):
    return small_xy


class TestBaseValidation:
    def test_base_requires_explicit_params(self, xy):
        x, y = xy
        t = BaseKernelTrainer(GaussianKernel(bandwidth=2.0))
        with pytest.raises(ConfigurationError, match="explicit batch_size"):
            t.fit(x, y)

    def test_base_with_explicit_params_trains(self, xy):
        x, y = xy
        t = BaseKernelTrainer(
            GaussianKernel(bandwidth=2.0), batch_size=8, step_size=4.0, seed=0
        )
        t.fit(x, y, epochs=3)
        assert t.mse(x, y) < np.mean(y**2)  # better than predicting zero

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"step_size": 0.0},
            {"monitor_size": 0},
            {"damping": 0.0},
            {"damping": 1.5},
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BaseKernelTrainer(GaussianKernel(bandwidth=1.0), **kwargs)

    def test_epoch_validation(self, xy):
        x, y = xy
        t = BaseKernelTrainer(
            GaussianKernel(bandwidth=1.0), batch_size=4, step_size=1.0
        )
        with pytest.raises(ConfigurationError):
            t.fit(x, y, epochs=0)

    def test_row_mismatch_rejected(self, xy):
        x, y = xy
        t = BaseKernelTrainer(
            GaussianKernel(bandwidth=1.0), batch_size=4, step_size=1.0
        )
        with pytest.raises(ConfigurationError):
            t.fit(x, y[:-5])

    def test_predict_before_fit_raises(self, xy):
        x, _ = xy
        t = BaseKernelTrainer(
            GaussianKernel(bandwidth=1.0), batch_size=4, step_size=1.0
        )
        with pytest.raises(NotFittedError):
            t.predict(x)


class TestHistory:
    def test_one_record_per_epoch(self, xy):
        x, y = xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        t.fit(x, y, epochs=4)
        assert len(t.history_) == 4
        assert [r.epoch for r in t.history_.records] == [1, 2, 3, 4]

    def test_train_mse_decreases_overall(self, xy):
        x, y = xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        t.fit(x, y, epochs=8)
        series = t.history_.series("train_mse")
        assert series[-1] < series[0]

    def test_val_error_recorded(self, small_dataset):
        ds = small_dataset
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        t.fit(
            ds.x_train, ds.y_train, epochs=2,
            x_val=ds.x_test, y_val=ds.labels_test,
        )
        assert all(r.val_error is not None for r in t.history_.records)

    def test_wall_time_monotone(self, xy):
        x, y = xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        t.fit(x, y, epochs=3)
        times = t.history_.series("wall_time")
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_final_accessor(self, xy):
        x, y = xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        t.fit(x, y, epochs=2)
        assert t.history_.final.epoch == 2


class TestStopping:
    def test_stop_train_mse(self, xy):
        x, y = xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), batch_size=8, seed=0)
        t.fit(x, y, epochs=200, stop_train_mse=1e-3)
        assert t.history_.final.train_mse < 1e-3
        assert len(t.history_) < 200

    def test_max_iterations(self, xy):
        x, y = xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), batch_size=4, seed=0)
        t.fit(x, y, epochs=100, max_iterations=7)
        assert t.history_.final.iterations == 7

    def test_val_patience_stops(self, small_dataset):
        ds = small_dataset
        t = KernelSGD(GaussianKernel(bandwidth=2.0), batch_size=16, seed=0)
        t.fit(
            ds.x_train, ds.y_train, epochs=100,
            x_val=ds.x_test, y_val=ds.labels_test, val_patience=2,
        )
        assert len(t.history_) < 100


class TestDeviceIntegration:
    def test_device_time_accumulates(self, xy):
        x, y = xy
        dev = titan_xp()
        t = KernelSGD(GaussianKernel(bandwidth=2.0), device=dev, seed=0)
        t.fit(x, y, epochs=2)
        assert dev.elapsed > 0
        assert t.history_.final.device_time == pytest.approx(dev.elapsed)

    def test_memory_freed_after_fit(self, xy):
        x, y = xy
        dev = titan_xp()
        t = KernelSGD(GaussianKernel(bandwidth=2.0), device=dev, seed=0)
        t.fit(x, y, epochs=1)
        assert dev.memory.used == 0
        assert dev.memory.peak > 0

    def test_memory_peak_matches_paper_model(self, xy):
        """Peak device memory is the paper's (d + l + m) * n."""
        x, y = xy
        n, d = x.shape
        l = 1
        dev = titan_xp()
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0), device=dev, batch_size=10, seed=0
        )
        t.fit(x, y, epochs=1)
        assert dev.memory.peak == pytest.approx(n * (d + l + 10))

    def test_batch_clamped_to_n(self, xy):
        x, y = xy
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0), batch_size=10**6, seed=0
        )
        t.fit(x, y, epochs=1)
        assert t.batch_size_ == x.shape[0]


class TestKeepBestVal:
    def test_restores_best_validation_weights(self, small_dataset):
        """With keep_best_val the final model's validation error equals
        the best epoch's, even if later epochs regressed."""
        ds = small_dataset
        t = KernelSGD(GaussianKernel(bandwidth=2.0), batch_size=16, seed=0)
        t.fit(
            ds.x_train, ds.y_train, epochs=12,
            x_val=ds.x_test, y_val=ds.labels_test, keep_best_val=True,
        )
        best_recorded = min(t.history_.series("val_error"))
        final = t.classification_error(ds.x_test, ds.labels_test)
        assert final == pytest.approx(best_recorded, abs=1e-12)

    def test_without_flag_final_weights_kept(self, small_dataset):
        ds = small_dataset
        t = KernelSGD(GaussianKernel(bandwidth=2.0), batch_size=16, seed=0)
        t.fit(
            ds.x_train, ds.y_train, epochs=5,
            x_val=ds.x_test, y_val=ds.labels_test, keep_best_val=False,
        )
        final = t.classification_error(ds.x_test, ds.labels_test)
        assert final == pytest.approx(
            t.history_.final.val_error, abs=1e-12
        )

    def test_no_validation_set_flag_harmless(self, small_xy):
        x, y = small_xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), batch_size=8, seed=0)
        t.fit(x, y, epochs=2, keep_best_val=True)
        assert t.history_.final.val_error is None


class TestDeterminism:
    def test_same_seed_same_model(self, xy):
        x, y = xy
        a = KernelSGD(GaussianKernel(bandwidth=2.0), seed=5).fit(x, y, epochs=2)
        b = KernelSGD(GaussianKernel(bandwidth=2.0), seed=5).fit(x, y, epochs=2)
        np.testing.assert_array_equal(a.model_.weights, b.model_.weights)

    def test_different_seed_different_path(self, xy):
        x, y = xy
        a = KernelSGD(
            GaussianKernel(bandwidth=2.0), batch_size=4, seed=1
        ).fit(x, y, epochs=1)
        b = KernelSGD(
            GaussianKernel(bandwidth=2.0), batch_size=4, seed=2
        ).fit(x, y, epochs=1)
        assert not np.allclose(a.model_.weights, b.model_.weights)

    def test_1d_targets_accepted(self, xy):
        x, y = xy
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        t.fit(x, y[:, 0], epochs=1)
        assert t.model_.weights.shape == (x.shape[0], 1)
