"""Tests for translation augmentation (the paper's 6.7e6-point MNIST)."""

import numpy as np
import pytest

from repro.data import (
    augment_dataset_with_translations,
    synthetic_mnist,
    translate_images,
)
from repro.exceptions import ConfigurationError


class TestTranslateImages:
    def test_identity_shift(self, rng):
        flat = rng.uniform(size=(5, 16))
        np.testing.assert_array_equal(
            translate_images(flat, 4, 4, 0, 0), flat
        )

    def test_shift_right(self):
        img = np.zeros((1, 9))
        img[0, 4] = 1.0  # center pixel of a 3x3 image
        out = translate_images(img, 3, 3, 0, 1).reshape(3, 3)
        assert out[1, 2] == 1.0
        assert out.sum() == 1.0

    def test_shift_down(self):
        img = np.zeros((1, 9))
        img[0, 4] = 1.0
        out = translate_images(img, 3, 3, 1, 0).reshape(3, 3)
        assert out[2, 1] == 1.0

    def test_content_falls_off_edge(self):
        img = np.zeros((1, 9))
        img[0, 2] = 1.0  # top-right corner
        out = translate_images(img, 3, 3, 0, 1)
        assert out.sum() == 0.0

    def test_round_trip_interior(self, rng):
        """Shifting right then left restores the interior columns."""
        flat = rng.uniform(size=(3, 25))
        there = translate_images(flat, 5, 5, 0, 1)
        back = translate_images(there, 5, 5, 0, -1).reshape(3, 5, 5)
        orig = flat.reshape(3, 5, 5)
        np.testing.assert_array_equal(back[:, :, :4], orig[:, :, :4])

    def test_mass_never_increases(self, rng):
        flat = rng.uniform(size=(4, 36))
        for dy, dx in [(1, 0), (-2, 1), (0, 3)]:
            out = translate_images(flat, 6, 6, dy, dx)
            assert out.sum() <= flat.sum() + 1e-12

    def test_geometry_validation(self, rng):
        flat = rng.uniform(size=(2, 12))
        with pytest.raises(ConfigurationError):
            translate_images(flat, 4, 4, 0, 0)  # 16 != 12
        with pytest.raises(ConfigurationError):
            translate_images(flat, 3, 4, 3, 0)  # shift out of range


class TestAugmentDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return synthetic_mnist(n_train=60, n_test=20, seed=0)

    def test_nine_fold_blowup(self, ds):
        aug = augment_dataset_with_translations(ds, 28, 28, max_shift=1)
        assert aug.n_train == 9 * ds.n_train
        assert aug.n_test == ds.n_test  # untouched
        assert aug.d == ds.d

    def test_labels_replicated_consistently(self, ds):
        aug = augment_dataset_with_translations(ds, 28, 28, max_shift=1)
        # Unshuffled: first block is the original data.
        np.testing.assert_array_equal(
            aug.labels_train[: ds.n_train], ds.labels_train
        )
        np.testing.assert_array_equal(
            aug.y_train.argmax(axis=1), aug.labels_train
        )

    def test_exclude_original(self, ds):
        aug = augment_dataset_with_translations(
            ds, 28, 28, max_shift=1, include_original=False
        )
        assert aug.n_train == 8 * ds.n_train

    def test_shuffle_seed(self, ds):
        a = augment_dataset_with_translations(ds, 28, 28, seed=1)
        b = augment_dataset_with_translations(ds, 28, 28, seed=1)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        c = augment_dataset_with_translations(ds, 28, 28, seed=2)
        assert not np.array_equal(a.x_train, c.x_train)

    def test_validation(self, ds):
        with pytest.raises(ConfigurationError):
            augment_dataset_with_translations(ds, 28, 28, max_shift=0)

    def test_augmented_training_not_worse(self, ds):
        """Training on the augmented set should not hurt test accuracy —
        the reason the paper trains on 6.7e6 augmented MNIST points."""
        from repro.core.eigenpro2 import EigenPro2
        from repro.kernels import GaussianKernel

        base = EigenPro2(GaussianKernel(bandwidth=3.0), seed=0)
        base.fit(ds.x_train, ds.y_train, epochs=4)
        err_base = base.classification_error(ds.x_test, ds.labels_test)

        aug = augment_dataset_with_translations(ds, 28, 28, seed=0)
        model = EigenPro2(GaussianKernel(bandwidth=3.0), seed=0)
        model.fit(aug.x_train, aug.y_train, epochs=4)
        err_aug = model.classification_error(aug.x_test, aug.labels_test)
        assert err_aug <= err_base + 0.05
