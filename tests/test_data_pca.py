"""Tests for PCA (paper Section 5.5 dimensionality reduction)."""

import numpy as np
import pytest

from repro.data import PCA
from repro.exceptions import ConfigurationError, NotFittedError


class TestPCA:
    def test_recovers_dominant_subspace(self, rng):
        # Data varying almost entirely along two known directions.
        basis = np.linalg.qr(rng.standard_normal((10, 10)))[0][:, :2]
        coeffs = rng.standard_normal((500, 2)) * [10.0, 5.0]
        x = coeffs @ basis.T + 0.01 * rng.standard_normal((500, 10))
        pca = PCA(n_components=2).fit(x)
        # Projection of the true basis onto the learned one is near-identity.
        overlap = np.abs(pca.components_ @ basis)
        assert overlap.max(axis=1).min() > 0.99

    def test_explained_variance_descending(self, rng):
        x = rng.standard_normal((100, 8)) * np.arange(8, 0, -1)
        pca = PCA(n_components=8).fit(x)
        assert (np.diff(pca.explained_variance_) <= 1e-9).all()

    def test_ratio_sums_below_one(self, rng):
        x = rng.standard_normal((60, 10))
        pca = PCA(n_components=4).fit(x)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1 + 1e-12

    def test_transform_shape(self, rng):
        x = rng.standard_normal((30, 6))
        z = PCA(n_components=3).fit_transform(x)
        assert z.shape == (30, 3)

    def test_full_rank_roundtrip(self, rng):
        x = rng.standard_normal((40, 5))
        pca = PCA(n_components=5).fit(x)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(x)), x, atol=1e-8
        )

    def test_whiten_unit_variance(self, rng):
        x = rng.standard_normal((300, 6)) * np.arange(1, 7)
        z = PCA(n_components=4, whiten=True).fit_transform(x)
        np.testing.assert_allclose(z.std(axis=0, ddof=1), 1.0, rtol=1e-6)

    def test_projected_components_uncorrelated(self, rng):
        x = rng.standard_normal((200, 8)) @ rng.standard_normal((8, 8))
        z = PCA(n_components=4).fit_transform(x)
        cov = np.cov(z.T)
        off = cov - np.diag(np.diag(cov))
        assert np.abs(off).max() < 1e-8 * np.abs(np.diag(cov)).max() + 1e-8

    def test_too_many_components_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            PCA(n_components=11).fit(rng.standard_normal((5, 10)))

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            PCA(n_components=2).transform(rng.standard_normal((3, 5)))

    def test_zero_components_rejected(self):
        with pytest.raises(ConfigurationError):
            PCA(n_components=0)

    def test_kernel_time_shrinks_with_pca(self, rng):
        """The point of Section 5.5: iteration cost n*m*d drops with d."""
        from repro.core.cost import sgd_cost

        full = sgd_cost(n=1000, m=100, d=1536, l=10).computation
        reduced = sgd_cost(n=1000, m=100, d=500, l=10).computation
        assert reduced < full / 3
