"""Tests for the Appendix-A preprocessing pipeline."""

import numpy as np
import pytest

from repro.data import grayscale, one_hot, to_unit_range, train_val_split, zscore
from repro.exceptions import ConfigurationError


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_infers_n_classes(self):
        assert one_hot(np.array([0, 3])).shape == (2, 4)

    def test_row_sums_are_one(self, rng):
        labels = rng.integers(0, 7, size=50)
        np.testing.assert_allclose(one_hot(labels, 7).sum(axis=1), 1.0)

    def test_out_of_range_label_rejected(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([0, 5]), 3)

    def test_negative_label_rejected(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([-1, 0]))

    def test_float_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([0.0, 1.0]))

    def test_non_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.zeros((3, 2), dtype=int))


class TestUnitRange:
    def test_output_in_unit_interval(self, rng):
        x = rng.uniform(-40, 17, size=(30, 4))
        out, _ = to_unit_range(x)
        assert out.min() >= 0 and out.max() <= 1

    def test_stats_threading(self, rng):
        """Test data must be scaled by *training* statistics."""
        x_train = rng.uniform(0, 10, (20, 3))
        x_test = rng.uniform(0, 10, (10, 3))
        _, stats = to_unit_range(x_train)
        scaled, _ = to_unit_range(x_test, stats)
        lo, span = stats
        np.testing.assert_allclose(scaled, (x_test - lo) / span)

    def test_constant_feature_no_nan(self):
        x = np.ones((5, 2))
        out, _ = to_unit_range(x)
        assert np.isfinite(out).all()

    def test_extremes_map_to_bounds(self, rng):
        x = rng.standard_normal((25, 3))
        out, _ = to_unit_range(x)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)


class TestZscore:
    def test_standardizes(self, rng):
        x = rng.normal(5, 3, size=(200, 4))
        out, _ = zscore(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_stats_threading(self, rng):
        x_train = rng.normal(2, 4, (50, 3))
        x_test = rng.normal(2, 4, (20, 3))
        _, stats = zscore(x_train)
        out, _ = zscore(x_test, stats)
        mu, sd = stats
        np.testing.assert_allclose(out, (x_test - mu) / sd)

    def test_constant_feature_no_nan(self):
        out, _ = zscore(np.full((6, 2), 3.0))
        assert np.isfinite(out).all()


class TestGrayscale:
    def test_shape_flattened(self, rng):
        imgs = rng.uniform(0, 1, size=(4, 8, 8, 3))
        assert grayscale(imgs).shape == (4, 64)

    def test_luminance_weights(self):
        red = np.zeros((1, 1, 1, 3))
        red[..., 0] = 1.0
        assert grayscale(red)[0, 0] == pytest.approx(0.299)

    def test_gray_input_preserved(self, rng):
        v = rng.uniform(0, 1, size=(2, 3, 3, 1))
        imgs = np.repeat(v, 3, axis=-1)
        np.testing.assert_allclose(
            grayscale(imgs), v.reshape(2, -1), atol=1e-12
        )

    def test_rejects_wrong_shape(self, rng):
        with pytest.raises(ConfigurationError):
            grayscale(rng.uniform(size=(4, 8, 8)))


class TestTrainValSplit:
    def test_sizes(self, rng):
        x = rng.standard_normal((100, 3))
        y = rng.integers(0, 2, 100)
        xt, yt, xv, yv = train_val_split(x, y, val_fraction=0.2, seed=0)
        assert len(xv) == 20 and len(xt) == 80
        assert len(yt) == 80 and len(yv) == 20

    def test_disjoint_and_complete(self, rng):
        x = np.arange(50)[:, None].astype(float)
        y = np.arange(50)
        xt, yt, xv, yv = train_val_split(x, y, 0.3, seed=1)
        recovered = np.sort(np.concatenate([xt[:, 0], xv[:, 0]]))
        np.testing.assert_array_equal(recovered, np.arange(50))

    def test_rows_stay_aligned(self, rng):
        x = rng.standard_normal((40, 2))
        y = x[:, 0] * 2
        xt, yt, xv, yv = train_val_split(x, y, 0.25, seed=2)
        np.testing.assert_allclose(yt, xt[:, 0] * 2)
        np.testing.assert_allclose(yv, xv[:, 0] * 2)

    @pytest.mark.parametrize("frac", [0.0, 1.0, -0.1])
    def test_bad_fraction_rejected(self, rng, frac):
        x = rng.standard_normal((10, 2))
        with pytest.raises(ConfigurationError):
            train_val_split(x, np.zeros(10), frac)
