"""Tests for the synthetic mixture generators and dataset wrappers."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    MixtureSpec,
    get_dataset,
    make_mixture_classification,
    make_rkhs_regression,
    synthetic_imagenet,
    synthetic_mnist,
    synthetic_susy,
    synthetic_timit,
)
from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel


class TestMixtureSpec:
    def test_sample_shapes(self, rng):
        spec = MixtureSpec(n_classes=4, dim=6)
        x, labels, means = spec.sample(120, rng)
        assert x.shape == (120, 6)
        assert labels.shape == (120,)
        assert means.shape == (4, spec.n_clusters, 6)
        assert set(np.unique(labels)) <= set(range(4))

    def test_means_reusable_for_test_split(self, rng):
        spec = MixtureSpec(n_classes=3, dim=5)
        _, _, means = spec.sample(50, rng)
        _, _, means2 = spec.sample(30, rng, means=means)
        np.testing.assert_array_equal(means, means2)

    def test_spectrum_decay_shapes_variance(self):
        rng = np.random.default_rng(0)
        spec = MixtureSpec(
            n_classes=2, dim=50, separation=1.0, noise=1.0, spectrum_decay=2.0
        )
        x, _, _ = spec.sample(3000, rng)
        var = x.var(axis=0)
        # First coordinates carry far more variance than the last.
        assert var[:5].mean() > 10 * var[-5:].mean()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_classes": 1, "dim": 3},
            {"n_classes": 2, "dim": 0},
            {"n_classes": 2, "dim": 3, "n_clusters": 0},
            {"n_classes": 2, "dim": 3, "separation": 0},
            {"n_classes": 2, "dim": 3, "noise": -1},
        ],
    )
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MixtureSpec(**kwargs)


class TestMakeMixtureClassification:
    def test_dataset_consistency(self):
        spec = MixtureSpec(n_classes=3, dim=8)
        ds = make_mixture_classification("t", 90, 45, spec, seed=0)
        assert isinstance(ds, Dataset)
        assert ds.n_train == 90 and ds.n_test == 45
        assert ds.l == 3
        np.testing.assert_array_equal(
            ds.y_train.argmax(axis=1), ds.labels_train
        )

    def test_unit_range_normalization(self):
        spec = MixtureSpec(n_classes=2, dim=5)
        ds = make_mixture_classification(
            "t", 100, 50, spec, normalization="unit_range", seed=1
        )
        assert ds.x_train.min() >= 0 and ds.x_train.max() <= 1
        assert ds.x_test.min() >= 0 and ds.x_test.max() <= 1

    def test_zscore_normalization(self):
        spec = MixtureSpec(n_classes=2, dim=5)
        ds = make_mixture_classification(
            "t", 400, 50, spec, normalization="zscore", seed=1
        )
        np.testing.assert_allclose(ds.x_train.mean(axis=0), 0, atol=1e-10)

    def test_deterministic_given_seed(self):
        spec = MixtureSpec(n_classes=2, dim=4)
        a = make_mixture_classification("t", 50, 20, spec, seed=7)
        b = make_mixture_classification("t", 50, 20, spec, seed=7)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.labels_test, b.labels_test)

    def test_learnable_by_a_kernel_machine(self):
        """Sanity: the generated task is genuinely learnable — a trained
        model must beat chance by a wide margin."""
        from repro.baselines import solve_ridge

        spec = MixtureSpec(n_classes=3, dim=10, separation=1.2, noise=0.4)
        ds = make_mixture_classification("t", 300, 150, spec, seed=3)
        model = solve_ridge(
            GaussianKernel(bandwidth=2.0), ds.x_train, ds.y_train, 1e-4
        )
        err = model.classification_error(ds.x_test, ds.labels_test)
        assert err < 0.5  # chance is 2/3

    def test_unknown_normalization_rejected(self):
        spec = MixtureSpec(n_classes=2, dim=3)
        with pytest.raises(ConfigurationError):
            make_mixture_classification("t", 10, 5, spec, normalization="l2")


class TestDatasetWrappers:
    @pytest.mark.parametrize(
        "factory,d,classes",
        [
            (synthetic_mnist, 784, 10),
            (synthetic_timit, 440, 144),
            (synthetic_susy, 18, 2),
            (synthetic_imagenet, 500, 100),
        ],
    )
    def test_signatures_match_paper(self, factory, d, classes):
        ds = factory(n_train=300, n_test=60, seed=0)
        assert ds.d == d
        assert ds.n_classes == classes
        assert ds.y_train.shape == (300, classes)

    def test_registry_lookup(self):
        ds = get_dataset("susy", n_train=100, n_test=20, seed=0)
        assert ds.n_classes == 2

    def test_registry_unknown(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_dataset("made-up")

    def test_subsampled(self):
        ds = synthetic_susy(n_train=200, n_test=40, seed=0)
        sub = ds.subsampled(50, seed=1)
        assert sub.n_train == 50
        assert sub.n_test == 40  # test set untouched
        assert sub.d == ds.d

    def test_subsampled_bounds(self):
        ds = synthetic_susy(n_train=100, n_test=20, seed=0)
        with pytest.raises(ConfigurationError):
            ds.subsampled(101)


class TestRKHSRegression:
    def test_shapes(self):
        k = GaussianKernel(bandwidth=2.0)
        xt, yt, xe, ye = make_rkhs_regression(k, 50, 20, 4, seed=0)
        assert xt.shape == (50, 4) and yt.shape == (50, 1)
        assert xe.shape == (20, 4) and ye.shape == (20, 1)

    def test_target_is_interpolable(self):
        """The noiseless target lies in the RKHS span, so the minimum-norm
        interpolant generalizes near-perfectly."""
        from repro.baselines import solve_interpolation

        k = GaussianKernel(bandwidth=2.0)
        xt, yt, xe, ye = make_rkhs_regression(k, 120, 40, 3, noise=0.0, seed=1)
        model = solve_interpolation(k, xt, yt)
        pred = model.predict(xe)
        assert np.mean((pred - ye) ** 2) < 1e-3 * np.mean(ye**2) + 1e-9

    def test_noise_applied_to_train_only(self):
        k = GaussianKernel(bandwidth=1.0)
        xt, yt, xe, ye = make_rkhs_regression(k, 30, 10, 2, noise=0.5, seed=2)
        xt2, yt2, xe2, ye2 = make_rkhs_regression(
            k, 30, 10, 2, noise=0.0, seed=2
        )
        np.testing.assert_array_equal(ye, ye2)
        assert not np.allclose(yt, yt2)
