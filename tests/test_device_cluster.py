"""Tests for the multi-GPU cluster device model (Section-6 extension)."""

import pytest

from repro.core.resource import max_device_batch_size
from repro.device import (
    Interconnect,
    allreduce_time,
    multi_gpu,
    serving_latency,
    titan_xp,
)
from repro.exceptions import ConfigurationError


class TestAllreduce:
    def test_single_device_free(self):
        assert allreduce_time(Interconnect(), 1, 1e6) == 0.0

    def test_latency_grows_with_devices(self):
        net = Interconnect(latency_s=1e-4, bandwidth_scalars_per_s=1e10)
        assert allreduce_time(net, 16, 0) > allreduce_time(net, 2, 0)

    def test_bandwidth_term_scales_with_payload(self):
        net = Interconnect(latency_s=0.0, bandwidth_scalars_per_s=1e9)
        t1 = allreduce_time(net, 4, 1e6)
        t2 = allreduce_time(net, 4, 2e6)
        assert t2 == pytest.approx(2 * t1)

    def test_ring_traffic_factor(self):
        """Traffic is 2(g-1)/g payload traversals."""
        net = Interconnect(latency_s=0.0, bandwidth_scalars_per_s=1.0)
        assert allreduce_time(net, 2, 10.0) == pytest.approx(10.0)  # 2*1/2
        assert allreduce_time(net, 4, 10.0) == pytest.approx(15.0)  # 2*3/4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            allreduce_time(Interconnect(), 0, 1.0)
        with pytest.raises(ConfigurationError):
            allreduce_time(Interconnect(), 2, -1.0)
        with pytest.raises(ConfigurationError):
            Interconnect(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            Interconnect(bandwidth_scalars_per_s=0.0)


class TestMultiGpu:
    def test_aggregates_resources(self):
        base = titan_xp().spec
        cluster = multi_gpu(base, 4).spec
        assert cluster.parallel_capacity == pytest.approx(
            4 * base.parallel_capacity
        )
        assert cluster.throughput == pytest.approx(4 * base.throughput)
        assert cluster.memory_scalars == pytest.approx(
            4 * base.memory_scalars
        )
        assert cluster.name == "titan-xp-x4"

    def test_single_device_identity_but_for_name(self):
        base = titan_xp().spec
        one = multi_gpu(base, 1).spec
        assert one.parallel_capacity == base.parallel_capacity
        assert one.launch_overhead_s == base.launch_overhead_s

    def test_sync_overhead_added(self):
        base = titan_xp().spec
        net = Interconnect(latency_s=1e-3, bandwidth_scalars_per_s=1e8)
        cluster = multi_gpu(base, 8, interconnect=net).spec
        assert cluster.launch_overhead_s > base.launch_overhead_s

    def test_accepts_simulated_device(self):
        cluster = multi_gpu(titan_xp(), 2)
        assert cluster.spec.name == "titan-xp-x2"

    def test_m_max_scales(self):
        n, d, l = 1_000_000, 440, 144
        single = max_device_batch_size(titan_xp(), n, d, l)
        quad = max_device_batch_size(multi_gpu(titan_xp(), 4), n, d, l)
        assert quad.m_max == pytest.approx(4 * single.m_max, rel=0.01)

    def test_epoch_speedup_below_linear_with_slow_network(self):
        n, d, l = 1_000_000, 440, 144
        slow = Interconnect(latency_s=5e-3, bandwidth_scalars_per_s=1e7)
        single = titan_xp()
        octo = multi_gpu(titan_xp(), 8, interconnect=slow)

        def epoch(dev):
            res = max_device_batch_size(dev, n, d, l)
            ops = (d + l) * res.m_max * n
            iters = -(-n // res.m_max)
            return dev.spec.epoch_time(ops, iters)

        speedup = epoch(single) / epoch(octo)
        assert 1.0 < speedup < 8.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            multi_gpu(titan_xp(), 0)

    def test_eigenpro2_trains_on_cluster(self, small_dataset):
        """End-to-end: the trainer consumes a cluster spec unchanged."""
        from repro.core.eigenpro2 import EigenPro2
        from repro.kernels import GaussianKernel

        ds = small_dataset
        cluster = multi_gpu(titan_xp(), 2)
        model = EigenPro2(
            GaussianKernel(bandwidth=2.0), device=cluster, seed=0
        )
        model.fit(ds.x_train, ds.y_train, epochs=2)
        assert cluster.elapsed > 0
        assert model.classification_error(ds.x_test, ds.labels_test) < 0.5


class TestRecoveryTime:
    def test_all_terms_contribute(self):
        from repro.device.cluster import recovery_time

        net = Interconnect(latency_s=1e-3, bandwidth_scalars_per_s=1e8)
        base = recovery_time(net, 4, weight_scalars=1e6)
        with_resident = recovery_time(
            net, 4, weight_scalars=1e6, resident_scalars=1e7
        )
        with_replay = recovery_time(
            net, 4, weight_scalars=1e6,
            replayed_iterations=10, iteration_time_s=0.5,
        )
        assert base > 0
        assert with_resident > base  # bigger resident share to move
        assert with_replay == pytest.approx(base + 5.0)  # 10 * 0.5s

    def test_restore_payload_scales_with_weights(self):
        from repro.device.cluster import recovery_time

        net = Interconnect(latency_s=0.0, bandwidth_scalars_per_s=1e8)
        t1 = recovery_time(net, 2, weight_scalars=1e6, worker_spawn_s=0.0)
        t2 = recovery_time(net, 2, weight_scalars=2e6, worker_spawn_s=0.0)
        assert t2 > t1

    def test_spawn_charged_once(self):
        from repro.device.cluster import recovery_time

        net = Interconnect(latency_s=0.0, bandwidth_scalars_per_s=1e12)
        slow = recovery_time(net, 8, weight_scalars=0.0, worker_spawn_s=1.0)
        fast = recovery_time(net, 8, weight_scalars=0.0, worker_spawn_s=0.0)
        assert slow - fast == pytest.approx(1.0)  # concurrent respawn

    def test_validation(self):
        from repro.device.cluster import recovery_time

        net = Interconnect()
        with pytest.raises(ConfigurationError):
            recovery_time(net, 1, weight_scalars=1.0)  # nothing to shrink to
        with pytest.raises(ConfigurationError):
            recovery_time(net, 2, weight_scalars=-1.0)
        with pytest.raises(ConfigurationError):
            recovery_time(net, 2, weight_scalars=1.0, replayed_iterations=-1)
        with pytest.raises(ConfigurationError):
            recovery_time(net, 2, weight_scalars=1.0, iteration_time_s=-0.1)
        with pytest.raises(ConfigurationError):
            recovery_time(net, 2, weight_scalars=1.0, worker_spawn_s=-0.1)
        with pytest.raises(ConfigurationError):
            recovery_time(net, 2, weight_scalars=1.0, resident_scalars=-1.0)


class TestServingLatency:
    """Cost model for the micro-batched serving request path."""

    def _link(self):
        return Interconnect(latency_s=5e-6, bandwidth_scalars_per_s=1e9)

    def test_all_terms_contribute(self):
        link = self._link()
        base = serving_latency(link, 2, payload_scalars=1e4)
        with_queue = serving_latency(
            link, 2, payload_scalars=1e4, queue_wait_s=1e-3
        )
        with_block = serving_latency(
            link, 2, payload_scalars=1e4, block_time_s=2e-3
        )
        assert base > 0.0
        assert with_queue == pytest.approx(base + 1e-3)
        assert with_block == pytest.approx(base + 2e-3)

    def test_fused_shaves_one_dispatch_latency(self):
        link = self._link()
        fused = serving_latency(link, 4, payload_scalars=1e5, fused=True)
        unfused = serving_latency(link, 4, payload_scalars=1e5, fused=False)
        assert unfused - fused == pytest.approx(link.latency_s)

    def test_single_device_no_collective(self):
        link = self._link()
        assert serving_latency(link, 1, payload_scalars=1e6) == 0.0
        assert serving_latency(
            link, 1, payload_scalars=1e6, queue_wait_s=1e-3,
            block_time_s=1e-3,
        ) == pytest.approx(2e-3)

    def test_monotone_in_payload(self):
        link = self._link()
        small = serving_latency(link, 2, payload_scalars=1e3)
        large = serving_latency(link, 2, payload_scalars=1e6)
        assert large > small

    def test_validation(self):
        link = self._link()
        with pytest.raises(ConfigurationError):
            serving_latency(link, 2, payload_scalars=1e4, queue_wait_s=-1.0)
        with pytest.raises(ConfigurationError):
            serving_latency(link, 2, payload_scalars=1e4, block_time_s=-1.0)
        for bad in (0.0, -1e-3):
            with pytest.raises(ConfigurationError):
                serving_latency(
                    link, 2, payload_scalars=1e4, deadline_s=bad
                )

    def test_deadline_shed_charges_only_the_deadline(self):
        """A request whose queue wait reaches its deadline is shed: the
        modelled latency is the deadline itself — no block, no
        collective — mirroring the dispatcher's shedding rule."""
        link = self._link()
        shed = serving_latency(
            link, 4, payload_scalars=1e6,
            queue_wait_s=5e-3, block_time_s=10.0, deadline_s=2e-3,
        )
        assert shed == 2e-3
        # Boundary: wait == deadline also sheds.
        assert serving_latency(
            link, 4, payload_scalars=1e6,
            queue_wait_s=2e-3, block_time_s=10.0, deadline_s=2e-3,
        ) == 2e-3

    def test_deadline_met_changes_nothing(self):
        """An admitted request (wait < deadline) prices identically to
        the no-deadline model — the hook only carves out the shed
        branch."""
        link = self._link()
        kwargs = dict(
            payload_scalars=1e4, queue_wait_s=1e-4, block_time_s=2e-3
        )
        assert serving_latency(
            link, 2, deadline_s=60.0, **kwargs
        ) == serving_latency(link, 2, **kwargs)
