"""Tests for the simulated device clock and memory tracker."""

import pytest

from repro.device import MemoryTracker, SimulatedDevice, titan_xp
from repro.device.presets import (
    cpu_sequential,
    ideal_parallel,
    ideal_sequential,
    tesla_k40,
    titan_x,
)
from repro.exceptions import ConfigurationError, DeviceMemoryError


class TestMemoryTracker:
    def test_allocate_and_free(self):
        t = MemoryTracker(capacity=100)
        t.allocate("a", 60)
        assert t.used == 60
        assert t.free == 40
        t.free_allocation("a")
        assert t.used == 0

    def test_overflow_raises(self):
        t = MemoryTracker(capacity=100)
        t.allocate("a", 80)
        with pytest.raises(DeviceMemoryError):
            t.allocate("b", 30)

    def test_duplicate_name_rejected(self):
        t = MemoryTracker(capacity=100)
        t.allocate("a", 10)
        with pytest.raises(ConfigurationError, match="already exists"):
            t.allocate("a", 10)

    def test_free_unknown_rejected(self):
        t = MemoryTracker(capacity=10)
        with pytest.raises(ConfigurationError, match="no allocation"):
            t.free_allocation("ghost")

    def test_negative_size_rejected(self):
        t = MemoryTracker(capacity=10)
        with pytest.raises(ConfigurationError):
            t.allocate("a", -1)

    def test_peak_tracks_high_water_mark(self):
        t = MemoryTracker(capacity=100)
        t.allocate("a", 70)
        t.free_allocation("a")
        t.allocate("b", 20)
        assert t.peak == 70

    def test_reset(self):
        t = MemoryTracker(capacity=100)
        t.allocate("a", 50)
        t.reset()
        assert t.used == 0 and t.peak == 0


class TestSimulatedDevice:
    def test_clock_accumulates(self):
        dev = titan_xp()
        t1 = dev.charge_iteration(1e9)
        t2 = dev.charge_iteration(1e9)
        assert dev.elapsed == pytest.approx(t1 + t2)
        assert dev.iterations == 2

    def test_charge_ops_splits_evenly(self):
        dev = titan_xp()
        dt = dev.charge_ops(1e10, n_iterations=10)
        assert dt == pytest.approx(10 * dev.iteration_time(1e9))

    def test_charge_ops_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            titan_xp().charge_ops(1e6, n_iterations=0)

    def test_reset(self):
        dev = titan_xp()
        dev.charge_iteration(1e8)
        dev.memory.allocate("x", 10)
        dev.reset()
        assert dev.elapsed == 0 and dev.iterations == 0
        assert dev.memory.used == 0

    def test_iteration_time_is_pure(self):
        dev = titan_xp()
        dev.iteration_time(1e9)
        assert dev.elapsed == 0


class TestPresets:
    @pytest.mark.parametrize(
        "factory", [titan_xp, titan_x, tesla_k40, cpu_sequential]
    )
    def test_finite_presets_construct(self, factory):
        dev = factory()
        assert dev.spec.throughput > 0
        assert dev.iteration_time(1e6) > 0

    def test_relative_speeds(self):
        """Titan Xp > Titan X > K40 in throughput, as in the real cards."""
        assert (
            titan_xp().spec.throughput
            > titan_x().spec.throughput
            > tesla_k40().spec.throughput
        )

    def test_ideal_parallel_constant_time(self):
        dev = ideal_parallel()
        assert dev.iteration_time(1) == dev.iteration_time(1e18)

    def test_ideal_sequential_linear(self):
        dev = ideal_sequential()
        assert dev.iteration_time(2e13) == pytest.approx(
            2 * dev.iteration_time(1e13)
        )

    def test_titan_xp_memory_is_12gb_in_scalars(self):
        assert titan_xp().spec.memory_scalars == pytest.approx(
            12 * 1024**3 / 4
        )

    def test_titan_xp_flat_region_matches_anchor(self):
        """The calibration anchor: on TIMIT-1e5 (d=440, l=144) the knee of
        the per-iteration curve sits near m ≈ 6500 (paper Section 5.2)."""
        spec = titan_xp().spec
        n, d, l = 100_000, 440, 144
        m_knee = spec.parallel_capacity / ((d + l) * n)
        assert 5000 < m_knee < 8000
