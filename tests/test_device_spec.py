"""Tests for the device timing model (paper Section 2 abstraction)."""

import math

import numpy as np
import pytest

from repro.device import DeviceSpec
from repro.exceptions import ConfigurationError


def make_spec(**overrides):
    base = dict(
        name="test-gpu",
        parallel_capacity=1e6,
        throughput=1e9,
        memory_scalars=1e8,
        launch_overhead_s=1e-4,
    )
    base.update(overrides)
    return DeviceSpec(**base)


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec(parallel_capacity=-1)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf])
    def test_bad_throughput_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            make_spec(throughput=bad)

    def test_nonpositive_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec(memory_scalars=0)

    def test_infinite_capacity_needs_explicit_floor(self):
        with pytest.raises(ConfigurationError, match="latency_floor"):
            make_spec(parallel_capacity=math.inf)

    def test_default_latency_floor(self):
        spec = make_spec()
        assert spec.latency_floor_s == pytest.approx(1e6 / 1e9)

    def test_negative_ops_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec().iteration_time(-1)


class TestTimingCurve:
    """The flat-then-linear curve of Figure 3a."""

    def test_constant_below_capacity(self):
        spec = make_spec()
        t_small = spec.iteration_time(10)
        t_half = spec.iteration_time(5e5)
        t_full = spec.iteration_time(1e6)
        assert t_small == t_half == t_full

    def test_linear_above_capacity(self):
        spec = make_spec()
        t1 = spec.iteration_time(2e6)
        t2 = spec.iteration_time(4e6)
        # Marginal ops are charged at 1/throughput.
        assert t2 - t1 == pytest.approx(2e6 / 1e9)

    def test_continuous_at_knee(self):
        spec = make_spec()
        below = spec.iteration_time(1e6 - 1)
        above = spec.iteration_time(1e6 + 1)
        assert above - below < 1e-8

    def test_launch_overhead_always_charged(self):
        spec = make_spec(launch_overhead_s=0.5)
        assert spec.iteration_time(0) >= 0.5

    def test_ideal_parallel_flat_everywhere(self):
        spec = DeviceSpec(
            name="ideal-parallel",
            parallel_capacity=math.inf,
            throughput=1e9,
            memory_scalars=math.inf,
            latency_floor_s=0.01,
        )
        assert spec.iteration_time(1) == spec.iteration_time(1e15) == 0.01

    def test_ideal_sequential_proportional(self):
        spec = DeviceSpec(
            name="ideal-seq",
            parallel_capacity=0.0,
            throughput=1e9,
            memory_scalars=math.inf,
            latency_floor_s=0.0,
        )
        assert spec.iteration_time(2e9) == pytest.approx(2.0)
        assert spec.iteration_time(4e9) == pytest.approx(
            2 * spec.iteration_time(2e9)
        )


class TestEpochTime:
    def test_scales_with_iterations(self):
        spec = make_spec()
        assert spec.epoch_time(100, 10) == pytest.approx(
            10 * spec.iteration_time(100)
        )

    def test_amdahl_fewer_iterations_cheaper(self):
        """Same total work split into fewer (bigger) iterations must be
        at most as expensive — launch overhead amortizes (Figure 3b)."""
        spec = make_spec(launch_overhead_s=1e-3)
        total_ops = 1e8
        t_many = spec.epoch_time(total_ops / 1000, 1000)
        t_few = spec.epoch_time(total_ops / 10, 10)
        assert t_few < t_many

    def test_negative_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec().epoch_time(10, -1)


class TestVariants:
    def test_with_memory(self):
        spec = make_spec().with_memory(42.0)
        assert spec.memory_scalars == 42.0
        assert spec.parallel_capacity == 1e6

    def test_scaled(self):
        spec = make_spec().scaled(2.0)
        assert spec.parallel_capacity == 2e6
        assert spec.throughput == 2e9

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make_spec().scaled(0.0)

    def test_describe_keys(self):
        desc = make_spec().describe()
        assert desc["name"] == "test-gpu"
        assert "C_G (ops)" in desc and "S_G (scalars)" in desc
