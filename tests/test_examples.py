"""Smoke tests: every example script must run end-to-end.

The examples are the package's public face; a refactor that breaks them
should fail CI.  Each is executed in-process via runpy with stdout
captured (their default scales keep each under ~a minute; the slowest is
exercised less often via the benchmark suite).
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, capsys, monkeypatch):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report, not silence


def test_examples_exist():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
