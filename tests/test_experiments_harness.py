"""Tests for the experiment harness and result rendering."""

import pytest

from repro.experiments.harness import ExperimentResult, PaperClaim, format_table


class TestFormatTable:
    def test_columns_union_in_order(self):
        rows = [{"a": 1, "b": 2}, {"b": 3, "c": 4}]
        text = format_table(rows)
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b") < header.index("c")

    def test_missing_cells_empty(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "| 1" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456, "y": 1234567.0, "z": 0.0001}])
        assert "0.123" in text
        assert "1.23e+06" in text
        assert "0.0001" in text

    def test_markdown_structure(self):
        lines = format_table([{"col": "v"}]).splitlines()
        assert lines[0].startswith("|") and lines[0].endswith("|")
        assert set(lines[1]) <= {"|", "-"}


class TestPaperClaim:
    def test_render_status(self):
        good = PaperClaim("x/y", "desc", "p", "m", holds=True)
        bad = PaperClaim("x/y", "desc", "p", "m", holds=False)
        info = PaperClaim("x/y", "desc", "p", "m", holds=None)
        assert "REPRODUCED" in good.render()
        assert "NOT REPRODUCED" in bad.render()
        assert "INFO" in info.render()


class TestExperimentResult:
    def test_add_row_and_series(self):
        r = ExperimentResult(name="t", title="T")
        r.add_row(a=1)
        r.add_series_point("s1", x=1, y=2)
        r.add_series_point("s1", x=2, y=3)
        assert len(r.rows) == 1
        assert len(r.series["s1"]) == 2

    def test_all_hold(self):
        r = ExperimentResult(name="t", title="T")
        r.add_claim(PaperClaim("a", "d", "p", "m", holds=True))
        r.add_claim(PaperClaim("b", "d", "p", "m", holds=None))
        assert r.all_hold
        r.add_claim(PaperClaim("c", "d", "p", "m", holds=False))
        assert not r.all_hold

    def test_render_contains_everything(self):
        r = ExperimentResult(name="t", title="Title", notes="a note")
        r.add_row(value=42)
        r.add_claim(PaperClaim("id1", "d", "p", "m", holds=True))
        text = r.render()
        assert "Title" in text and "42" in text
        assert "id1" in text and "a note" in text


class TestCLI:
    def test_unknown_experiment_errors(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_registry_complete(self):
        """Every table and figure of the paper has a registered runner."""
        from repro.experiments import EXPERIMENTS

        for required in (
            "figure1", "figure2", "figure3a", "figure3b",
            "table1", "table2", "table3", "table4",
        ):
            assert required in EXPERIMENTS

    def test_cli_runs_and_writes(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        code = main(["figure3a", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert "figure3a" in out
        assert (tmp_path / "figure3a.txt").exists()
        assert code == 0
