"""Tests for the combined-report builder."""

import pathlib

from repro.experiments.harness import ExperimentResult, PaperClaim
from repro.experiments.report import build_report, write_report


def _fake_runner(name: str, holds: bool):
    def run() -> ExperimentResult:
        r = ExperimentResult(name=name, title=f"Fake {name}")
        r.add_row(metric=1.0)
        r.add_claim(
            PaperClaim(f"{name}/claim", "desc", "paper", "measured", holds)
        )
        return r

    return run


class TestBuildReport:
    def test_scoreboard_counts(self):
        text = build_report(
            {
                "good": _fake_runner("good", True),
                "bad": _fake_runner("bad", False),
            }
        )
        assert "| good | 1 | 1 | 0 |" in text
        assert "| bad | 1 | 0 | 1 |" in text
        assert "| **total** | **2** | **1** | **1** |" in text

    def test_contains_renders(self):
        text = build_report({"one": _fake_runner("one", True)})
        assert "Fake one" in text
        assert "REPRODUCED" in text

    def test_subset_selection(self):
        text = build_report(
            {
                "a": _fake_runner("a", True),
                "b": _fake_runner("b", True),
            },
            names=["b"],
        )
        assert "Fake b" in text and "Fake a" not in text

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.experiments.report as report_mod

        monkeypatch.setattr(
            "repro.experiments.EXPERIMENTS",
            {"only": _fake_runner("only", True)},
        )
        out = write_report(tmp_path / "sub" / "SUMMARY.md")
        assert out.exists()
        assert "Fake only" in out.read_text()

    def test_real_cheap_experiment(self):
        """The report builder runs against the real registry too (the
        cheapest entry)."""
        from repro.experiments import EXPERIMENTS

        text = build_report(EXPERIMENTS, names=["figure3a"])
        assert "figure3a" in text
