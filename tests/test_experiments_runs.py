"""Integration tests: every experiment runs at tiny scale and its paper
claims hold.

The benchmark suite runs the experiments at a larger scale; these tests
guard the harnesses themselves (configs, claims logic, structure) within
the unit-test budget.
"""

import pytest

from repro.experiments import (
    AblationConfig,
    ClusterScalingConfig,
    Figure1Config,
    Figure2Config,
    Figure3Config,
    Table1Config,
    Table2Config,
    Table3Config,
    Table4Config,
    run_acceleration_check,
    run_cluster_scaling,
    run_figure1,
    run_figure2,
    run_figure3a,
    run_figure3b,
    run_kernel_choice_ablation,
    run_pca_ablation,
    run_smoothness_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)


def assert_reproduced(result):
    failed = [c.claim_id for c in result.claims if c.holds is False]
    assert not failed, f"claims failed: {failed}"


class TestFigureExperiments:
    def test_figure1(self):
        result = run_figure1(Figure1Config(n_train=600, seed=0))
        assert_reproduced(result)
        assert len(result.rows) > 5

    def test_figure2_tiny(self):
        cfg = Figure2Config(
            dataset="mnist", n_train=300, n_test=80, mse_target=5e-3,
            batch_sizes=(1, 8, 64, 300), max_iterations=20_000, seed=0,
        )
        result = run_figure2(cfg)
        assert_reproduced(result)
        assert set(result.series) == {"sgd", "eigenpro1", "eigenpro2"}
        for pts in result.series.values():
            assert len(pts) == 4

    def test_figure3a(self):
        result = run_figure3a(Figure3Config())
        assert_reproduced(result)
        assert len(result.rows) == len(Figure3Config().batch_sizes)

    def test_figure3b(self):
        result = run_figure3b(Figure3Config())
        assert_reproduced(result)

    def test_cluster_scaling(self):
        result = run_cluster_scaling(
            ClusterScalingConfig(n_train=400, device_counts=(1, 2, 4, 8))
        )
        assert_reproduced(result)


class TestTableExperiments:
    def test_table1(self):
        result = run_table1(Table1Config(n=400, m=80, s=150, q=40))
        assert_reproduced(result)

    def test_table2_tiny(self):
        cfg = Table2Config(
            datasets=("susy",), n_train=500, n_test=150,
            ep2_epochs=4, ep1_epochs=4, falkon_centers=200, seed=0,
        )
        result = run_table2(cfg)
        # Tiny scale: the speed ordering must hold; accuracy can wobble
        # within the claim's tolerance, which the claim itself encodes.
        speed_claims = [
            c for c in result.claims if c.claim_id.endswith("speedup")
        ]
        assert all(c.holds for c in speed_claims)
        assert len(result.rows) == 3

    def test_table3_tiny(self):
        cfg = Table3Config(
            datasets=("mnist",), n_train=300, n_test=120,
            smo_max_iter=6000, ep2_max_epochs=15, seed=0,
        )
        result = run_table3(cfg)
        assert_reproduced(result)
        row = result.rows[0]
        assert row["eigenpro2_s"] < row["thundersvm_s"] < row["libsvm_s"]

    def test_table4_tiny(self):
        result = run_table4(
            Table4Config(datasets=("mnist", "susy"), n_train=800, seed=0)
        )
        assert_reproduced(result)
        assert len(result.rows) == 2


class TestAblations:
    def test_kernel_choice(self):
        result = run_kernel_choice_ablation(
            AblationConfig(
                n_train=400, n_test=120, bandwidths=(5.0, 10.0), epochs=3
            )
        )
        assert_reproduced(result)

    def test_pca(self):
        result = run_pca_ablation(
            AblationConfig(n_train=400, n_test=120, pca_dims=(100,), epochs=3)
        )
        assert_reproduced(result)

    def test_acceleration(self):
        result = run_acceleration_check(
            AblationConfig(n_train=500, n_test=100, seed=0)
        )
        assert_reproduced(result)

    def test_smoothness(self):
        result = run_smoothness_ablation(
            AblationConfig(n_train=400, n_test=120, epochs=3, seed=0)
        )
        assert_reproduced(result)
        assert len(result.rows) == 4
