"""Failure-injection tests: the system must fail loudly and precisely.

A production library's error paths are part of its contract: device
out-of-memory must point at the offending allocation, bad inputs must be
rejected before they poison the optimizer state, and solver caps must
leave honest diagnostics rather than silent wrong answers.
"""

import math

import numpy as np
import pytest

from repro.baselines import Falkon, KernelSGD, SMOSVM
from repro.core.eigenpro2 import EigenPro2
from repro.device import DeviceSpec, SimulatedDevice
from repro.exceptions import ConfigurationError, DeviceMemoryError
from repro.kernels import GaussianKernel


def tiny_memory_device(scalars: float) -> SimulatedDevice:
    return SimulatedDevice(
        DeviceSpec(
            name="tiny-mem",
            parallel_capacity=1e12,
            throughput=1e12,
            memory_scalars=scalars,
        )
    )


class TestDeviceOOM:
    def test_oversized_batch_raises_oom(self, small_dataset):
        """A batch the device cannot hold must raise DeviceMemoryError —
        the simulated CUDA OOM."""
        ds = small_dataset
        n, d, l = ds.n_train, ds.d, ds.l
        # Memory fits the data and weights, but not the kernel block for
        # a batch of 200.
        dev = tiny_memory_device(n * (d + l) + n * 100)
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0),
            device=dev, batch_size=200, step_size=1.0, seed=0,
        )
        with pytest.raises(DeviceMemoryError, match="kernel_block"):
            t.fit(ds.x_train, ds.y_train, epochs=1)

    def test_oom_leaves_no_leaked_allocations(self, small_dataset):
        ds = small_dataset
        n, d, l = ds.n_train, ds.d, ds.l
        dev = tiny_memory_device(n * (d + l) + n * 100)
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0),
            device=dev, batch_size=200, step_size=1.0, seed=0,
        )
        with pytest.raises(DeviceMemoryError):
            t.fit(ds.x_train, ds.y_train, epochs=1)
        assert dev.memory.used == 0  # everything rolled back

    def test_auto_selection_respects_memory(self, small_dataset):
        """EigenPro 2.0's Step 1 must *choose* a batch that fits — a
        memory-constrained device gets a smaller batch than n, trains
        without OOM, and never exceeds capacity."""
        ds = small_dataset
        n, d, l = ds.n_train, ds.d, ds.l
        # Budget ≈ training state + preconditioner (s*q with s=n, q<=239)
        # + room for a batch of ~130.
        dev = tiny_memory_device(
            float(n * (d + l + 120) + n * 239 + 3000)
        )
        model = EigenPro2(GaussianKernel(bandwidth=2.0), device=dev, seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=1)
        assert model.batch_size_ < n  # memory bound the choice
        assert dev.memory.peak <= dev.memory.capacity


class TestBadInputs:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_x_rejected(self, small_xy, bad):
        x, y = small_xy
        x = x.copy()
        x[3, 2] = bad
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        with pytest.raises(ConfigurationError, match="non-finite"):
            t.fit(x, y)

    def test_nonfinite_y_rejected(self, small_xy):
        x, y = small_xy
        y = y.copy()
        y[5] = np.nan
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        with pytest.raises(ConfigurationError, match="non-finite"):
            t.fit(x, y)

    def test_empty_dataset_rejected(self):
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        with pytest.raises(Exception):
            t.fit(np.zeros((0, 4)), np.zeros((0, 1)))


class TestSolverCapsAreHonest:
    def test_smo_reports_unconverged(self, small_dataset):
        ds = small_dataset
        svm = SMOSVM(GaussianKernel(bandwidth=2.0), max_iter=3)
        svm.fit(ds.x_train, ds.labels_train)
        assert svm.converged_ is not None
        assert not all(svm.converged_)  # 3 iterations cannot finish

    def test_falkon_iteration_cap_recorded(self, small_xy):
        x, y = small_xy
        f = Falkon(
            GaussianKernel(bandwidth=2.0), n_centers=40,
            reg_lambda=1e-12, max_iters=2, tol=1e-14, seed=0,
        )
        f.fit(x, y)
        assert f.n_iters_ == 2  # hit the cap, visibly

    def test_trainer_divergence_is_observable(self, small_xy):
        """A absurd step size diverges; the history must show it rather
        than hide it (train MSE grows, stays finite reporting)."""
        x, y = small_xy
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0),
            batch_size=8, step_size=1e4, seed=0,
        )
        t.fit(x, y, epochs=3)
        series = t.history_.series("train_mse")
        assert series[-1] > series[0]


class TestDegenerateGeometry:
    def test_duplicate_points_train_fine(self):
        """Exact duplicates make K singular; iterative training must not
        care (no inversion involved)."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((40, 3))
        x = np.vstack([x, x[:10]])
        y = np.sin(x[:, :1])
        model = EigenPro2(GaussianKernel(bandwidth=1.5), s=50, seed=0)
        model.fit(x, y, epochs=20)
        assert np.isfinite(model.mse(x, y))

    def test_single_feature(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((60, 1))
        y = np.cos(x)
        model = EigenPro2(GaussianKernel(bandwidth=1.0), seed=0)
        model.fit(x, y, epochs=30)
        assert model.mse(x, y) < 0.1

    def test_constant_labels(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((50, 4))
        y = np.ones((50, 1))
        model = EigenPro2(GaussianKernel(bandwidth=2.0), seed=0)
        model.fit(x, y, epochs=30)
        assert model.mse(x, y) < 0.05
