"""Failure-injection tests: the system must fail loudly and precisely.

A production library's error paths are part of its contract: device
out-of-memory must point at the offending allocation, bad inputs must be
rejected before they poison the optimizer state, solver caps must leave
honest diagnostics rather than silent wrong answers — and a shard worker
process dying mid-epoch must surface as a clean
:class:`~repro.exceptions.ShardError` (no hang, no leaked shared-memory
segments), never as a wedged training loop.
"""

import math
import os
import threading
import time

import numpy as np
import pytest

from repro.baselines import Falkon, KernelSGD, SMOSVM
from repro.core.eigenpro2 import EigenPro2
from repro.device import DeviceSpec, SimulatedDevice
from repro.exceptions import ConfigurationError, DeviceMemoryError, ShardError
from repro.kernels import GaussianKernel
from repro.shard import process_transport_available, transport_available


def tiny_memory_device(scalars: float) -> SimulatedDevice:
    return SimulatedDevice(
        DeviceSpec(
            name="tiny-mem",
            parallel_capacity=1e12,
            throughput=1e12,
            memory_scalars=scalars,
        )
    )


class TestDeviceOOM:
    def test_oversized_batch_raises_oom(self, small_dataset):
        """A batch the device cannot hold must raise DeviceMemoryError —
        the simulated CUDA OOM."""
        ds = small_dataset
        n, d, l = ds.n_train, ds.d, ds.l
        # Memory fits the data and weights, but not the kernel block for
        # a batch of 200.
        dev = tiny_memory_device(n * (d + l) + n * 100)
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0),
            device=dev, batch_size=200, step_size=1.0, seed=0,
        )
        with pytest.raises(DeviceMemoryError, match="kernel_block"):
            t.fit(ds.x_train, ds.y_train, epochs=1)

    def test_oom_leaves_no_leaked_allocations(self, small_dataset):
        ds = small_dataset
        n, d, l = ds.n_train, ds.d, ds.l
        dev = tiny_memory_device(n * (d + l) + n * 100)
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0),
            device=dev, batch_size=200, step_size=1.0, seed=0,
        )
        with pytest.raises(DeviceMemoryError):
            t.fit(ds.x_train, ds.y_train, epochs=1)
        assert dev.memory.used == 0  # everything rolled back

    def test_auto_selection_respects_memory(self, small_dataset):
        """EigenPro 2.0's Step 1 must *choose* a batch that fits — a
        memory-constrained device gets a smaller batch than n, trains
        without OOM, and never exceeds capacity."""
        ds = small_dataset
        n, d, l = ds.n_train, ds.d, ds.l
        # Budget ≈ training state + preconditioner (s*q with s=n, q<=239)
        # + room for a batch of ~130.
        dev = tiny_memory_device(
            float(n * (d + l + 120) + n * 239 + 3000)
        )
        model = EigenPro2(GaussianKernel(bandwidth=2.0), device=dev, seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=1)
        assert model.batch_size_ < n  # memory bound the choice
        assert dev.memory.peak <= dev.memory.capacity


class TestBadInputs:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_x_rejected(self, small_xy, bad):
        x, y = small_xy
        x = x.copy()
        x[3, 2] = bad
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        with pytest.raises(ConfigurationError, match="non-finite"):
            t.fit(x, y)

    def test_nonfinite_y_rejected(self, small_xy):
        x, y = small_xy
        y = y.copy()
        y[5] = np.nan
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        with pytest.raises(ConfigurationError, match="non-finite"):
            t.fit(x, y)

    def test_empty_dataset_rejected(self):
        t = KernelSGD(GaussianKernel(bandwidth=2.0), seed=0)
        with pytest.raises(Exception):
            t.fit(np.zeros((0, 4)), np.zeros((0, 1)))


class TestSolverCapsAreHonest:
    def test_smo_reports_unconverged(self, small_dataset):
        ds = small_dataset
        svm = SMOSVM(GaussianKernel(bandwidth=2.0), max_iter=3)
        svm.fit(ds.x_train, ds.labels_train)
        assert svm.converged_ is not None
        assert not all(svm.converged_)  # 3 iterations cannot finish

    def test_falkon_iteration_cap_recorded(self, small_xy):
        x, y = small_xy
        f = Falkon(
            GaussianKernel(bandwidth=2.0), n_centers=40,
            reg_lambda=1e-12, max_iters=2, tol=1e-14, seed=0,
        )
        f.fit(x, y)
        assert f.n_iters_ == 2  # hit the cap, visibly

    def test_trainer_divergence_is_observable(self, small_xy):
        """A absurd step size diverges; the history must show it rather
        than hide it (train MSE grows, stays finite reporting)."""
        x, y = small_xy
        t = KernelSGD(
            GaussianKernel(bandwidth=2.0),
            batch_size=8, step_size=1e4, seed=0,
        )
        t.fit(x, y, epochs=3)
        series = t.history_.series("train_mse")
        assert series[-1] > series[0]


def _noop_task(worker):
    return worker.shard_id


def _exit_abruptly_task(worker):
    # Simulates a worker crash (OOM-killed, segfault): the process
    # vanishes mid-task without replying.
    os._exit(3)


def _raise_task(worker):
    raise ValueError("worker-side failure")


_KILL_COUNTER = {"n": 0}

# Bound at import time: forked children inherit the monkeypatched trainer
# module, so the wrapper below must call the *original* form task, not
# whatever the module attribute points at after the patch.
from repro.shard.trainer import _form_block_task as _ORIGINAL_FORM_TASK  # noqa: E402


def _form_block_then_die_task(worker, xb, xb_sq_norms, slot):
    # Module-level (hence picklable) wrapper around the trainer's form
    # task that crashes shard 1's worker after a couple of iterations —
    # a mid-epoch worker death.  The counter is per-process: each forked
    # child counts its own form calls.
    _KILL_COUNTER["n"] += 1
    if _KILL_COUNTER["n"] > 2 and worker.shard_id == 1:
        os._exit(5)
    return _ORIGINAL_FORM_TASK(worker, xb, xb_sq_norms, slot)


# Kill-*once* injection for the elastic-recovery tests.  The dying worker
# drops a flag file first (path passed through the environment, which
# forked children inherit), so the rebuilt group's workers — fresh forks
# whose per-process counters restart at zero — see the flag and serve
# normally instead of re-killing themselves every retry.
_KILL_FLAG_ENV = "REPRO_TEST_RECOVERY_KILL_FLAG"
_KILL_SHARD_ENV = "REPRO_TEST_RECOVERY_KILL_SHARD"


def _form_block_kill_once_task(worker, xb, xb_sq_norms, slot):
    _KILL_COUNTER["n"] += 1
    flag = os.environ.get(_KILL_FLAG_ENV)
    target = int(os.environ.get(_KILL_SHARD_ENV, "-1"))
    if (
        flag
        and worker.shard_id == target
        and _KILL_COUNTER["n"] > 2
        and not os.path.exists(flag)
    ):
        with open(flag, "w") as fh:
            fh.write(str(worker.shard_id))
        os._exit(7)
    return _ORIGINAL_FORM_TASK(worker, xb, xb_sq_norms, slot)


def _recovery_problem(n=240, d=8, l=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    proj = rng.standard_normal((d, l))
    y = np.tanh(x @ proj / np.sqrt(d))
    return x, y


def _recovery_trainer(g, transport, **kw):
    from repro.shard import ShardedEigenPro2

    kw.setdefault("checkpoint_every", 2)
    return ShardedEigenPro2(
        GaussianKernel(bandwidth=2.0),
        n_shards=g,
        transport=transport,
        s=48,
        batch_size=32,
        seed=0,
        damping=0.5,
        **kw,
    )


def _rank_kill_watcher(trainer, killed, timeout_s=60.0):
    """Parent-side injector for transports whose workers re-import the
    real modules (spawn): poll until the first checkpoint of the fit
    exists, then SIGKILL the last shard's worker process."""

    def run():
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline and not killed.is_set():
            group = trainer.shard_group_
            if (
                group is not None
                and trainer.last_checkpoint_ is not None
                and not trainer.recovery_log_
            ):
                try:
                    proc = group.executors[-1].process
                    if proc.is_alive():
                        proc.kill()
                        killed.set()
                        return
                except (AttributeError, IndexError):
                    return  # group torn down under us; the fit is ending
            time.sleep(0.002)

    thread = threading.Thread(
        target=run, name="repro-test-rank-killer", daemon=True
    )
    thread.start()
    return thread


def _leaked_segment_names(group):
    return [shm.name for shm in group.transport._segments]


def _assert_segments_unlinked(names):
    from multiprocessing import shared_memory

    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


needs_process = pytest.mark.skipif(
    not process_transport_available(),
    reason="platform lacks fork-safe shared memory",
)


@needs_process
class TestProcessTransportFailure:
    """Killing a process-transport worker mid-epoch must raise a clean
    ShardError — no hang, no leaked shared-memory segments — and worker-
    side exceptions must cross the transport intact."""

    def _group(self, g=2):
        from repro.shard import ShardGroup

        rng = np.random.default_rng(0)
        centers = rng.standard_normal((64, 4))
        weights = rng.standard_normal((64, 2))
        return ShardGroup.build(
            centers, weights, g=g, transport="process",
            kernel=GaussianKernel(bandwidth=2.0),
        )

    def test_killed_worker_raises_shard_error(self):
        group = self._group()
        names = _leaked_segment_names(group)
        try:
            assert group.map(_noop_task) == [0, 1]
            group.executors[1].process.kill()
            with pytest.raises(ShardError, match="shard 1.*died"):
                group.map(_noop_task)
            # Subsequent submissions fail fast, not by timeout.
            with pytest.raises(ShardError, match="unavailable"):
                group.transport.submit(1, _noop_task).result()
            # The surviving shard still works.
            assert group.transport.submit(0, _noop_task).result() == 0
        finally:
            group.close()
        _assert_segments_unlinked(names)

    def test_worker_dying_mid_task_raises(self):
        group = self._group()
        names = _leaked_segment_names(group)
        try:
            with pytest.raises(ShardError, match="died"):
                group.map(_exit_abruptly_task)
        finally:
            group.close()
        _assert_segments_unlinked(names)

    def test_alive_probe_reports_dead_worker(self):
        """The liveness probe must *report* a dead worker — without
        raising, and without waiting for the next task to trip over
        it."""
        group = self._group()
        try:
            assert group.alive() == [True, True]
            assert group.dead_shards() == []
            group.executors[1].process.kill()
            deadline = time.monotonic() + 10.0
            while group.alive()[1] and time.monotonic() < deadline:
                time.sleep(0.01)  # SIGKILL delivery is asynchronous
            assert group.alive() == [True, False]
            assert group.dead_shards() == [1]
            # Probing latched the death: submissions now fail fast.
            with pytest.raises(ShardError, match="unavailable"):
                group.transport.submit(1, _noop_task).result()
        finally:
            group.close()

    def test_worker_exception_crosses_transport(self):
        with self._group() as group:
            with pytest.raises(ValueError, match="worker-side failure"):
                group.map(_raise_task)
            # The failure was the task's, not the transport's: the
            # workers survive and keep serving.
            assert group.map(_noop_task) == [0, 1]

    def test_close_is_idempotent_and_unlinks(self):
        group = self._group()
        names = _leaked_segment_names(group)
        group.close()
        group.close()
        _assert_segments_unlinked(names)
        with pytest.raises(ShardError, match="closed"):
            group.transport.submit(0, _noop_task)

    def test_rejected_config_leaves_no_segments(self):
        """A configuration rejected at construction (weights rows not
        matching the plan) must not leave an orphaned shared-memory
        segment behind."""
        import glob

        from repro.shard.plan import ShardPlan
        from repro.shard.transport.process import ProcessTransport

        rng = np.random.default_rng(3)
        before = set(glob.glob("/dev/shm/psm_*"))
        with pytest.raises(ConfigurationError, match="rows"):
            ProcessTransport(
                ShardPlan.contiguous(10, 2),
                rng.standard_normal((10, 3)),
                rng.standard_normal((7, 2)),
            )
        assert set(glob.glob("/dev/shm/psm_*")) == before

    def test_trainer_survives_worker_death(self, small_dataset):
        """A worker killed after training: the next sharded operation
        raises ShardError, close() completes, segments are unlinked."""
        from repro.shard import ShardedEigenPro2

        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=2,
            transport="process",
            s=60,
            batch_size=32,
            seed=0,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            names = _leaked_segment_names(trainer.shard_group_)
            trainer.shard_group_.executors[0].process.kill()
            with pytest.raises(ShardError):
                trainer.predict_sharded(small_dataset.x_test)
        finally:
            trainer.close()
        _assert_segments_unlinked(names)

    def test_fit_failure_propagates_original_error(self, small_dataset):
        """With the elastic-recovery budget zeroed, a worker death
        mid-fit surfaces the ShardError (not a masking secondary failure
        from the cleanup path) and carries the last checkpoint for
        out-of-band resumption."""
        from repro.shard import ShardedEigenPro2
        from repro.shard import trainer as shard_trainer

        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=2,
            transport="process",
            s=60,
            batch_size=32,
            seed=0,
            max_recoveries=0,
        )
        original_form = shard_trainer._form_block_task
        shard_trainer._form_block_task = _form_block_then_die_task
        try:
            with pytest.raises(ShardError, match="died") as excinfo:
                trainer.fit(
                    small_dataset.x_train, small_dataset.y_train, epochs=2
                )
            names = _leaked_segment_names(trainer.shard_group_)
        finally:
            shard_trainer._form_block_task = original_form
            trainer.close()
        _assert_segments_unlinked(names)
        # The epoch-anchor checkpoint existed before the failure, so the
        # exhausted-budget path must attach it to the propagating error.
        ckpt = excinfo.value.checkpoint
        assert ckpt is not None
        assert ckpt.g == 2 and ckpt.transport == "process"
        assert ckpt.weights.shape == trainer._alpha.shape


@needs_process
class TestProcessElasticRecovery:
    """A worker killed mid-fit must not end the fit: the trainer shrinks
    to ``g - 1`` shards, restores the last checkpoint and resumes, and
    the recovered weights match a failure-free run of the same workload
    within the documented 1e-6-of-scale bound (replay is exact; only the
    collective's association order over the shrunken plan differs)."""

    @pytest.mark.parametrize("g", [2, 4])
    def test_killed_worker_recovers_mid_fit(self, g, tmp_path, monkeypatch):
        from repro.shard import trainer as shard_trainer

        x, y = _recovery_problem()
        # Failure-free reference on the same transport and workload.
        ref = _recovery_trainer(g, "process")
        try:
            ref.fit(x, y, epochs=2)
            assert ref.recovery_log_ == []
            ref_w = np.array(ref._alpha)
        finally:
            ref.close()

        flag = tmp_path / "killed.flag"
        monkeypatch.setenv(_KILL_FLAG_ENV, str(flag))
        monkeypatch.setenv(_KILL_SHARD_ENV, str(g - 1))
        monkeypatch.setattr(
            shard_trainer, "_form_block_task", _form_block_kill_once_task
        )
        trainer = _recovery_trainer(g, "process")
        try:
            trainer.fit(x, y, epochs=2)
            assert flag.exists()  # the kill actually fired
            assert len(trainer.recovery_log_) == 1
            event = trainer.recovery_log_[0]
            assert event.old_g == g and event.new_g == g - 1
            assert event.dead_shards == (g - 1,)
            assert event.replayed_steps >= 0
            assert event.recovery_s >= 0.0
            assert "died" in event.error
            assert trainer.shard_group_.g == g - 1
            recovered_w = np.array(trainer._alpha)
        finally:
            trainer.close()

        scale = float(np.max(np.abs(ref_w)))
        assert np.max(np.abs(recovered_w - ref_w)) <= 1e-6 * scale

    def test_checkpoint_persists_to_disk_and_roundtrips(self, tmp_path):
        from repro.shard.recovery import ShardCheckpoint

        x, y = _recovery_problem()
        trainer = _recovery_trainer(2, "process", checkpoint_dir=tmp_path)
        try:
            trainer.fit(x, y, epochs=1)
            last = trainer.last_checkpoint_
            assert last is not None
            path = tmp_path / "checkpoint.pkl"
            assert path.exists()
            loaded = ShardCheckpoint.load(path)
            np.testing.assert_array_equal(loaded.weights, last.weights)
            assert loaded.epoch == last.epoch
            assert loaded.batch_cursor == last.batch_cursor
            assert loaded.g == 2
            assert loaded.transport == "process"
            assert loaded.rng_state == last.rng_state
            assert loaded.op_counts == last.op_counts
        finally:
            trainer.close()

    def test_min_shards_floor_reraises_with_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """With ``min_shards`` equal to the current group size there is
        nothing to shrink to: the original error propagates, checkpoint
        attached, after zero recoveries."""
        from repro.shard import trainer as shard_trainer

        x, y = _recovery_problem()
        monkeypatch.setenv(_KILL_FLAG_ENV, str(tmp_path / "killed.flag"))
        monkeypatch.setenv(_KILL_SHARD_ENV, "1")
        monkeypatch.setattr(
            shard_trainer, "_form_block_task", _form_block_kill_once_task
        )
        trainer = _recovery_trainer(2, "process", min_shards=2)
        try:
            with pytest.raises(ShardError, match="died") as excinfo:
                trainer.fit(x, y, epochs=2)
            assert trainer.recovery_log_ == []
            assert excinfo.value.checkpoint is not None
        finally:
            trainer.close()


needs_torchdist = pytest.mark.skipif(
    not transport_available("torchdist"),
    reason="torch is not installed (transport 'torchdist' unavailable)",
)


@needs_torchdist
class TestTorchDistTransportFailure:
    """Killing a torchdist rank must raise a clean ShardError — no hang
    even when the surviving rank sits in a collective whose peer died —
    and close() must always tear the process group down: children joined
    or terminated, shared segments unlinked, rendezvous directory
    removed."""

    def _group(self, g=2, **options):
        from repro.shard import ShardGroup

        rng = np.random.default_rng(0)
        centers = rng.standard_normal((64, 4))
        weights = rng.standard_normal((64, 2))
        return ShardGroup.build(
            centers, weights, g=g, transport="torchdist",
            kernel=GaussianKernel(bandwidth=2.0), **options,
        )

    def _assert_torn_down(self, group, names):
        _assert_segments_unlinked(names)
        assert group.transport._init_dir is None
        for ex in group.executors:
            assert not ex.process.is_alive()

    def test_killed_rank_raises_shard_error(self):
        group = self._group()
        names = _leaked_segment_names(group)
        init_dir = group.transport._init_dir
        try:
            assert group.map(_noop_task) == [0, 1]
            group.executors[1].process.kill()
            with pytest.raises(ShardError, match="shard 1.*died"):
                group.map(_noop_task)
            with pytest.raises(ShardError, match="unavailable"):
                group.transport.submit(1, _noop_task).result()
            # The surviving rank still serves non-collective tasks.
            assert group.transport.submit(0, _noop_task).result() == 0
        finally:
            group.close()
        self._assert_torn_down(group, names)
        assert not os.path.exists(init_dir)

    def test_collective_with_dead_peer_raises(self):
        """An all-reduce whose peer rank died must error out (gloo
        detects the broken connection or hits the group timeout), never
        hang the caller."""
        group = self._group(timeout_s=20.0)
        names = _leaked_segment_names(group)
        try:
            group.executors[1].process.kill()
            rows = np.ones((4, 2))
            with pytest.raises(ShardError):
                group.allreduce([rows, rows])
        finally:
            group.close()
        self._assert_torn_down(group, names)

    def test_worker_exception_crosses_transport(self):
        with self._group() as group:
            with pytest.raises(ValueError, match="worker-side failure"):
                group.map(_raise_task)
            # The failure was the task's: the ranks and their process
            # group survive and keep serving (including collectives).
            assert group.map(_noop_task) == [0, 1]
            rows = np.full((3, 2), 2.0)
            out = np.asarray(group.allreduce([rows, rows]))
            np.testing.assert_array_equal(out, 4.0 * rows)

    def test_close_is_idempotent_and_cleans_up(self):
        group = self._group()
        names = _leaked_segment_names(group)
        init_dir = group.transport._init_dir
        group.close()
        group.close()
        self._assert_torn_down(group, names)
        assert not os.path.exists(init_dir)
        with pytest.raises(ConfigurationError, match="closed"):
            group.transport.submit(0, _noop_task)

    def test_trainer_survives_rank_death(self, small_dataset):
        from repro.shard import ShardedEigenPro2

        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=2,
            transport="torchdist",
            s=60,
            batch_size=32,
            seed=0,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            names = _leaked_segment_names(trainer.shard_group_)
            trainer.shard_group_.executors[0].process.kill()
            with pytest.raises(ShardError):
                trainer.predict_sharded(small_dataset.x_test)
        finally:
            trainer.close()
        _assert_segments_unlinked(names)


@needs_torchdist
class TestTorchDistElasticRecovery:
    """Elastic recovery with real ``torch.distributed`` ranks.  The
    injector is a parent-side watcher thread (spawned workers re-import
    the real modules, so the fork-inherited task patch the process-
    transport tests use cannot run there): it polls for the fit's first
    checkpoint, then SIGKILLs the last rank's worker process.  The group
    timeout bounds any collective the survivors are blocked in, so the
    failure surfaces as a ShardError and recovery proceeds — never a
    hang."""

    OPTIONS = {"timeout_s": 20.0}

    @pytest.mark.parametrize("g", [2, 4])
    def test_killed_rank_recovers_mid_fit(self, g):
        x, y = _recovery_problem()
        ref = _recovery_trainer(
            g, "torchdist", transport_options=dict(self.OPTIONS)
        )
        try:
            ref.fit(x, y, epochs=2)
            assert ref.recovery_log_ == []
            ref_w = np.array(ref._alpha)
        finally:
            ref.close()

        trainer = _recovery_trainer(
            g, "torchdist", transport_options=dict(self.OPTIONS)
        )
        killed = threading.Event()
        try:
            watcher = _rank_kill_watcher(trainer, killed)
            trainer.fit(x, y, epochs=2)
            watcher.join(timeout=60.0)
            assert killed.is_set()  # the injection actually fired
            assert len(trainer.recovery_log_) == 1
            event = trainer.recovery_log_[0]
            assert event.old_g == g and event.new_g == g - 1
            assert event.replayed_steps >= 0
            assert trainer.shard_group_.g == g - 1
            recovered_w = np.array(trainer._alpha)
        finally:
            trainer.close()

        scale = float(np.max(np.abs(ref_w)))
        assert np.max(np.abs(recovered_w - ref_w)) <= 1e-6 * scale

    def test_dead_peer_group_errors_then_rebuilds(self):
        """g=3: a collective whose peer rank died must surface as a
        ShardError on the survivors (gloo broken-connection detection or
        the group timeout — no hang), after which a fresh group over the
        surviving shard count serves collectives again: the manual
        analogue of the trainer's elastic shrink."""
        from repro.shard import ShardGroup

        rng = np.random.default_rng(0)
        centers = rng.standard_normal((96, 4))
        weights = rng.standard_normal((96, 2))
        kernel = GaussianKernel(bandwidth=2.0)
        rows = np.ones((4, 2))
        group = ShardGroup.build(
            centers, weights, g=3, transport="torchdist",
            kernel=kernel, **self.OPTIONS,
        )
        try:
            group.executors[-1].process.kill()
            with pytest.raises(ShardError):
                group.allreduce([rows, rows, rows])
            assert 2 in group.dead_shards()
        finally:
            group.close()
        rebuilt = ShardGroup.build(
            centers, weights, g=2, transport="torchdist",
            kernel=kernel, **self.OPTIONS,
        )
        try:
            out = np.asarray(rebuilt.allreduce([rows, rows]))
            np.testing.assert_array_equal(out, 2.0 * rows)
        finally:
            rebuilt.close()


class TestDegenerateGeometry:
    def test_duplicate_points_train_fine(self):
        """Exact duplicates make K singular; iterative training must not
        care (no inversion involved)."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((40, 3))
        x = np.vstack([x, x[:10]])
        y = np.sin(x[:, :1])
        model = EigenPro2(GaussianKernel(bandwidth=1.5), s=50, seed=0)
        model.fit(x, y, epochs=20)
        assert np.isfinite(model.mse(x, y))

    def test_single_feature(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((60, 1))
        y = np.cos(x)
        model = EigenPro2(GaussianKernel(bandwidth=1.0), seed=0)
        model.fit(x, y, epochs=30)
        assert model.mse(x, y) < 0.1

    def test_constant_labels(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((50, 4))
        y = np.ones((50, 1))
        model = EigenPro2(GaussianKernel(bandwidth=2.0), seed=0)
        model.fit(x, y, epochs=30)
        assert model.mse(x, y) < 0.05
