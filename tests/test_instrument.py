"""Tests for the operation-count instrumentation layer."""

import threading

import numpy as np

from repro.backend import available_backends, use_backend
from repro.config import use_precision
from repro.instrument import (
    OP_CATEGORIES,
    OpMeter,
    iter_categories,
    meter_scope,
    record_ops,
    relay_op_counts,
)
from repro.kernels import GaussianKernel, LaplacianKernel, kernel_matvec


class TestOpMeter:
    def test_record_and_total(self):
        m = OpMeter()
        m.record("a", 10)
        m.record("a", 5)
        m.record("b", 3)
        assert m.total() == 18
        assert m.total("a") == 15
        assert m.counts["a"].calls == 2

    def test_total_with_missing_category(self):
        m = OpMeter()
        m.record("x", 4)
        assert m.total("x", "missing") == 4

    def test_reset(self):
        m = OpMeter()
        m.record("a", 1)
        m.reset()
        assert m.total() == 0

    def test_as_dict(self):
        m = OpMeter()
        m.record("k", 7)
        assert m.as_dict() == {"k": 7}

    def test_iter_categories_sorted(self):
        m = OpMeter()
        m.record("small", 1)
        m.record("big", 100)
        names = [name for name, _ in iter_categories(m)]
        assert names == ["big", "small"]


class TestMeterScope:
    def test_records_only_inside_scope(self):
        record_ops("outside", 99)  # no active meter: no-op
        with meter_scope() as meter:
            record_ops("inside", 5)
        assert meter.as_dict() == {"inside": 5}

    def test_nested_meters_both_record(self):
        with meter_scope() as outer:
            with meter_scope() as inner:
                record_ops("x", 3)
            record_ops("y", 2)
        assert inner.as_dict() == {"x": 3}
        assert outer.total() == 5

    def test_kernel_evaluation_records_mnd(self, rng):
        k = GaussianKernel(bandwidth=1.0)
        x = rng.standard_normal((7, 5))
        z = rng.standard_normal((4, 5))
        with meter_scope() as meter:
            k(x, z)
        assert meter.total("kernel_eval") == 7 * 4 * 5

    def test_exception_still_pops_meter(self):
        try:
            with meter_scope() as meter:
                raise ValueError("boom")
        except ValueError:
            pass
        # A fresh scope must not double count.
        with meter_scope() as fresh:
            record_ops("z", 1)
        assert meter.total() == 0
        assert fresh.total() == 1


class TestMeterBackendInvariance:
    """Op counts are derived from array shapes, never from backend state,
    so the cost model validated in Table 1 holds on every backend."""

    @staticmethod
    def _metered_workload():
        rng = np.random.default_rng(9)
        x = rng.standard_normal((30, 6))
        centers = rng.standard_normal((20, 6))
        w = rng.standard_normal((20, 2))
        with meter_scope() as meter:
            kernel_matvec(
                LaplacianKernel(bandwidth=2.0), x, centers, w, max_scalars=120
            )
        return meter.as_dict()

    def test_counts_identical_across_backends(self):
        counts = {}
        for name in available_backends():
            with use_backend(name):
                counts[name] = self._metered_workload()
        reference = counts["numpy"]
        assert reference["kernel_eval"] == 30 * 20 * 6
        assert reference["gemm"] == 30 * 20 * 2
        for name, got in counts.items():
            assert got == reference, f"op counts diverged on backend {name}"

    def test_counts_precision_invariant(self):
        ref = self._metered_workload()
        with use_precision("float32"):
            got = self._metered_workload()
        assert got == ref


class TestMeterThreading:
    """The meter stack is thread-local: nested scopes on one thread never
    leak counts into another thread's meters."""

    def test_nested_scopes_from_multiple_threads(self):
        n_threads, per_thread_ops = 8, 50
        results = {}
        errors = []
        start = threading.Barrier(n_threads)

        def work(tid: int) -> None:
            try:
                start.wait()
                with meter_scope() as outer:
                    for i in range(per_thread_ops):
                        with meter_scope() as inner:
                            record_ops(f"t{tid}", tid + 1)
                        assert inner.total() == tid + 1
                    record_ops("outer_only", 1)
                results[tid] = outer.as_dict()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for tid in range(n_threads):
            # Each thread saw exactly its own categories — no cross-talk.
            assert results[tid] == {
                f"t{tid}": per_thread_ops * (tid + 1),
                "outer_only": 1,
            }

    def test_relay_under_concurrent_meter_scopes(self):
        """relay_op_counts records onto *this* thread's meters only:
        concurrent relays from many threads, each holding nested
        scopes, never cross-talk (the PendingMap / BlockPrefetcher
        relay path run g-wide)."""
        n_threads = 6
        results = {}
        errors = []
        start = threading.Barrier(n_threads)

        def work(tid: int) -> None:
            try:
                start.wait()
                with meter_scope() as outer, meter_scope() as inner:
                    for _ in range(40):
                        relay_op_counts({"gemm": tid + 1, f"t{tid}": 2})
                results[tid] = (outer.as_dict(), inner.as_dict())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for tid in range(n_threads):
            expected = {"gemm": 40 * (tid + 1), f"t{tid}": 80}
            # Nested scopes both see the relay; no other thread's
            # category leaked in.
            assert results[tid] == (expected, expected)

    def test_relay_skips_zero_entries(self):
        """Zero deltas are dropped so relaying never inflates a
        category's calls count with empty records."""
        with meter_scope() as meter:
            relay_op_counts({"gemm": 0, "kernel_eval": 5})
        assert meter.as_dict() == {"kernel_eval": 5}
        assert "gemm" not in meter.counts

    def test_relay_without_active_meter_is_noop(self):
        relay_op_counts({"gemm": 7})  # must not raise

    def test_metered_kernel_work_across_threads(self):
        """Real kernel evaluations metered concurrently stay per-thread
        under the new backend dispatch (workspace + meter both
        thread-local)."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((12, 4))
        k = GaussianKernel(bandwidth=1.0)
        expected = 12 * 12 * 4
        totals = {}

        def work(tid: int) -> None:
            with meter_scope() as meter:
                for _ in range(tid + 1):  # distinct workloads per thread
                    k(x, x)
            totals[tid] = meter.total("kernel_eval")

        threads = [
            threading.Thread(target=work, args=(tid,)) for tid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert totals == {tid: expected * (tid + 1) for tid in range(4)}


class TestOpCategoriesContract:
    """OP_CATEGORIES is a frozen public contract: persisted artifacts
    (benchmark payloads, checkpoints, metric snapshots) key on these
    names, so renames/removals are breaking changes.  This pin is the
    single source of truth shared by the OpMeter docs and
    repro.observe.MetricsRegistry."""

    def test_frozen_names(self):
        assert OP_CATEGORIES == (
            "kernel_eval",
            "gemm",
            "precond",
            "eig",
            "allreduce",
        )

    def test_metrics_registry_consumes_contract(self):
        from repro.observe import MetricsRegistry

        registry = MetricsRegistry()
        registry.ingest_op_counts({"gemm": 3})
        snapshot = registry.snapshot()
        # Every contract category appears (zero-filled), keyed ops/<name>.
        assert {f"ops/{c}" for c in OP_CATEGORIES} <= set(
            snapshot["counters"]
        )
        assert snapshot["counters"]["ops/gemm"] == 3
        assert snapshot["counters"]["ops/kernel_eval"] == 0
