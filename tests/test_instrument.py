"""Tests for the operation-count instrumentation layer."""

import numpy as np

from repro.instrument import OpMeter, iter_categories, meter_scope, record_ops
from repro.kernels import GaussianKernel


class TestOpMeter:
    def test_record_and_total(self):
        m = OpMeter()
        m.record("a", 10)
        m.record("a", 5)
        m.record("b", 3)
        assert m.total() == 18
        assert m.total("a") == 15
        assert m.counts["a"].calls == 2

    def test_total_with_missing_category(self):
        m = OpMeter()
        m.record("x", 4)
        assert m.total("x", "missing") == 4

    def test_reset(self):
        m = OpMeter()
        m.record("a", 1)
        m.reset()
        assert m.total() == 0

    def test_as_dict(self):
        m = OpMeter()
        m.record("k", 7)
        assert m.as_dict() == {"k": 7}

    def test_iter_categories_sorted(self):
        m = OpMeter()
        m.record("small", 1)
        m.record("big", 100)
        names = [name for name, _ in iter_categories(m)]
        assert names == ["big", "small"]


class TestMeterScope:
    def test_records_only_inside_scope(self):
        record_ops("outside", 99)  # no active meter: no-op
        with meter_scope() as meter:
            record_ops("inside", 5)
        assert meter.as_dict() == {"inside": 5}

    def test_nested_meters_both_record(self):
        with meter_scope() as outer:
            with meter_scope() as inner:
                record_ops("x", 3)
            record_ops("y", 2)
        assert inner.as_dict() == {"x": 3}
        assert outer.total() == 5

    def test_kernel_evaluation_records_mnd(self, rng):
        k = GaussianKernel(bandwidth=1.0)
        x = rng.standard_normal((7, 5))
        z = rng.standard_normal((4, 5))
        with meter_scope() as meter:
            k(x, z)
        assert meter.total("kernel_eval") == 7 * 4 * 5

    def test_exception_still_pops_meter(self):
        try:
            with meter_scope() as meter:
                raise ValueError("boom")
        except ValueError:
            pass
        # A fresh scope must not double count.
        with meter_scope() as fresh:
            record_ops("z", 1)
        assert meter.total() == 0
        assert fresh.total() == 1
