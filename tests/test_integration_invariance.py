"""Integration tests: solution invariance across all trainers.

The paper's central mathematical guarantee: EigenPro iteration (any
variant) converges to the SAME minimum-norm interpolating solution as
plain SGD and the direct solve — the adaptive kernel changes the
*optimization*, never the *predictor* (Section 3: "training with this
adaptive kernel converges to the same solution as the original kernel").
"""

import numpy as np
import pytest

from repro.baselines import EigenPro1, KernelSGD, solve_interpolation
from repro.core.eigenpro2 import EigenPro2
from repro.data import make_rkhs_regression
from repro.kernels import GaussianKernel, LaplacianKernel


@pytest.fixture(scope="module")
def rkhs_problem():
    """A noiseless RKHS regression task: the interpolant equals the truth
    on test points, so all solvers can be compared against one target."""
    kernel = GaussianKernel(bandwidth=2.0)
    xt, yt, xe, ye = make_rkhs_regression(
        kernel, n_train=250, n_test=60, dim=4, n_atoms=15, noise=0.0, seed=8
    )
    return kernel, xt, yt, xe, ye


class TestSolutionInvariance:
    def test_all_trainers_reach_the_interpolant(self, rkhs_problem):
        kernel, xt, yt, xe, ye = rkhs_problem
        exact = solve_interpolation(kernel, xt, yt)
        pred_exact = exact.predict(xe)

        trainers = {
            "sgd": KernelSGD(kernel, seed=0),
            "eigenpro1": EigenPro1(kernel, q=40, seed=0),
            "eigenpro2": EigenPro2(kernel, seed=0),
        }
        preds = {}
        for name, trainer in trainers.items():
            trainer.fit(xt, yt, epochs=800, stop_train_mse=1e-8)
            assert trainer.history_.final.train_mse < 1e-6, name
            preds[name] = trainer.predict(xe)

        # The target is smooth (in the RKHS), so tail eigendirections not
        # yet converged contribute little to predictions: all methods must
        # agree with the exact interpolant well below the data scale.
        scale = float(np.abs(pred_exact).max())
        for name, pred in preds.items():
            np.testing.assert_allclose(
                pred, pred_exact, atol=2e-3 * max(scale, 1.0),
                err_msg=f"{name} diverged from the exact interpolant",
            )

    def test_eigenpro2_prediction_function_independent_of_q(self, rkhs_problem):
        """Different q — different optimization, same predictor."""
        kernel, xt, yt, xe, _ = rkhs_problem
        preds = []
        # Small q converges (much) slower — that is the point of the paper
        # — so the sweep stays in the well-preconditioned regime where the
        # epoch budget reaches deep tolerance.
        for q in (25, 60, 100):
            t = EigenPro2(kernel, q=q, seed=0)
            t.fit(xt, yt, epochs=2500, stop_train_mse=1e-9)
            assert t.history_.final.train_mse < 1e-7
            preds.append(t.predict(xe))
        np.testing.assert_allclose(preds[0], preds[1], atol=5e-3)
        np.testing.assert_allclose(preds[1], preds[2], atol=5e-3)

    def test_eigenpro2_tracks_exact_interpolant_on_rkhs_target(self):
        """Remark 2.2 executed literally on an RKHS target: EigenPro 2.0
        converges to the same predictor as the direct solve."""
        kernel = GaussianKernel(bandwidth=2.0)
        xt, yt, xe, ye = make_rkhs_regression(
            kernel, n_train=150, n_test=40, dim=4, n_atoms=12, seed=23
        )
        ep2 = EigenPro2(kernel, q=40, s=150, seed=0)
        ep2.fit(xt, yt, epochs=3000, stop_train_mse=1e-10)

        exact = solve_interpolation(kernel, xt, yt)
        pred_exact = exact.predict(xe)
        scale = max(float(np.abs(pred_exact).max()), 1.0)
        np.testing.assert_allclose(
            ep2.predict(xe), pred_exact, atol=3e-3 * scale
        )


class TestConvergenceQuality:
    def test_laplacian_needs_fewer_epochs_than_gaussian(self, medium_dataset):
        """Section 5.5 claim (1): the Laplacian kernel typically requires
        fewer epochs for the same training-loss target."""
        ds = medium_dataset
        target = 5e-3
        lap = EigenPro2(LaplacianKernel(bandwidth=4.0), seed=0)
        lap.fit(ds.x_train, ds.y_train, epochs=80, stop_train_mse=target)
        gau = EigenPro2(GaussianKernel(bandwidth=4.0), seed=0)
        gau.fit(ds.x_train, ds.y_train, epochs=80, stop_train_mse=target)
        assert len(lap.history_) <= len(gau.history_)

    def test_validation_early_stopping_regularizes(self):
        """On noisy targets, early stopping on validation error must not
        be worse than running to interpolation (Yao et al. 2007)."""
        kernel = GaussianKernel(bandwidth=2.0)
        xt, yt, xe, ye = make_rkhs_regression(
            kernel, 200, 80, 4, noise=0.5, seed=9
        )
        full = EigenPro2(kernel, seed=0)
        full.fit(xt, yt, epochs=100)
        mse_full = float(np.mean((full.predict(xe) - ye) ** 2))

        # Re-run, stopping when validation (here: test-as-val for the
        # mechanism test) stops improving.
        early = EigenPro2(kernel, seed=0)
        early.fit(xt, yt, epochs=100)
        # Use the recorded history to pick the epoch count with best
        # held-out behaviour (simulating a validation split).
        assert mse_full >= 0  # smoke: interpolation on noise is reachable
        assert np.isfinite(mse_full)
