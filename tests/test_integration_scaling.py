"""Integration tests for the linear-scaling phenomenology (Figures 1/2).

These verify, at test scale, the qualitative curves the paper's
evaluation section plots:

- plain SGD: epochs-to-converge flat up to m*(k), then growing ∝ m
  (no benefit from batches beyond the tiny critical size);
- EigenPro 2.0: scaling extends to much larger batches;
- device time: constant per iteration below capacity (so bigger batches
  ARE free on the device until m_max).
"""

import numpy as np
import pytest

from repro.baselines import KernelSGD
from repro.core.eigenpro2 import EigenPro2
from repro.device import titan_xp
from repro.kernels import GaussianKernel


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(41)
    x = rng.standard_normal((300, 8))
    # Smooth multi-output target.
    y = np.stack(
        [np.sin(x[:, 0]), np.cos(x[:, 1]) * x[:, 2]], axis=1
    )
    return x, y


def iterations_to_target(trainer_cls, kernel, x, y, m, target, **kw):
    t = trainer_cls(kernel, batch_size=m, seed=0, **kw)
    t.fit(x, y, epochs=8000, stop_train_mse=target, max_iterations=200_000)
    assert t.history_.final.train_mse < target, f"m={m} failed to converge"
    return t.history_.final.iterations


class TestSGDSaturation:
    def test_epochs_flat_then_linear(self, problem):
        """Iterations-to-target times m (i.e. per-sample work) is roughly
        constant below m* and grows beyond it; equivalently iterations
        stop improving after m*."""
        x, y = problem
        kernel = GaussianKernel(bandwidth=2.5)
        target = 1e-4
        sgd_m = {}
        for m in (1, 2, 4, 8, 32, 128):
            sgd_m[m] = iterations_to_target(
                KernelSGD, kernel, x, y, m, target
            )
        # Linear regime: going 1 -> 4 cuts iterations by ~>2x.
        assert sgd_m[4] < sgd_m[1] / 2
        # Saturation: going 32 -> 128 (both >> m* ≈ 5-10) buys < 2x.
        assert sgd_m[128] > sgd_m[32] / 2

    def test_eigenpro2_extends_scaling(self, problem):
        """Where SGD has saturated (m = 32 vs 256), EigenPro 2.0 keeps
        improving markedly."""
        x, y = problem
        kernel = GaussianKernel(bandwidth=2.5)
        target = 1e-4
        ep2_small = iterations_to_target(
            EigenPro2, kernel, x, y, 32, target, q=60
        )
        ep2_large = iterations_to_target(
            EigenPro2, kernel, x, y, 256, target, q=60
        )
        assert ep2_large < ep2_small / 2

    def test_eigenpro2_beats_sgd_at_large_batch(self, problem):
        """At a batch size far beyond m*(k), the adaptive kernel converges
        in far fewer iterations (Figure 1's right-hand side)."""
        x, y = problem
        kernel = GaussianKernel(bandwidth=2.5)
        target = 1e-4
        m = 128
        it_sgd = iterations_to_target(KernelSGD, kernel, x, y, m, target)
        it_ep2 = iterations_to_target(
            EigenPro2, kernel, x, y, m, target, q=60
        )
        assert it_ep2 < it_sgd / 3


class TestDeviceTimeCurves:
    def test_iteration_time_flat_below_capacity(self):
        """Figure 3a at paper scale (simulated, so exact): per-iteration
        time is flat until (d+l)*m*n hits C_G, then linear."""
        dev = titan_xp()
        n, d, l = 100_000, 440, 144
        times = {
            m: dev.iteration_time((d + l) * m * n)
            for m in (1, 64, 1024, 6500, 13000, 52000)
        }
        assert times[1] == times[64] == times[1024]
        assert times[13000] > times[6500]
        # Deep in the linear regime, time ∝ m.
        assert times[52000] == pytest.approx(4 * times[13000], rel=0.35)

    def test_epoch_time_improves_until_mmax(self):
        """Figure 3b: epoch time falls as m grows toward m_max because
        fewer launches are needed; beyond the knee it flattens."""
        dev = titan_xp()
        n, d, l = 100_000, 440, 144
        ops = lambda m: (d + l) * m * n

        def epoch_time(m):
            iters = int(np.ceil(n / m))
            return dev.spec.epoch_time(ops(m), iters)

        t = {m: epoch_time(m) for m in (16, 128, 1024, 6500, 26000)}
        assert t[128] < t[16]
        assert t[1024] < t[128]
        assert t[6500] < t[1024]
        # Beyond the compute knee the total epoch time stops improving
        # meaningfully (same total ops, throughput-bound).
        assert t[26000] == pytest.approx(t[6500], rel=0.25)
