"""Tests for the Matérn kernel family."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel, LaplacianKernel, MaternKernel, make_kernel


class TestMaternValues:
    def test_nu_half_equals_laplacian(self, rng):
        x = rng.standard_normal((10, 4))
        z = rng.standard_normal((8, 4))
        m = MaternKernel(bandwidth=2.0, nu=0.5)
        lap = LaplacianKernel(bandwidth=2.0)
        np.testing.assert_allclose(m(x, z), lap(x, z), atol=1e-12)

    def test_nu_three_halves_formula(self, rng):
        sigma = 1.7
        k = MaternKernel(bandwidth=sigma, nu=1.5)
        x = rng.standard_normal((5, 3))
        z = rng.standard_normal((4, 3))
        r = np.array([[np.linalg.norm(a - b) for b in z] for a in x])
        ar = np.sqrt(3) * r / sigma
        np.testing.assert_allclose(k(x, z), (1 + ar) * np.exp(-ar), atol=1e-12)

    def test_nu_five_halves_formula(self, rng):
        sigma = 2.3
        k = MaternKernel(bandwidth=sigma, nu=2.5)
        x = rng.standard_normal((5, 3))
        z = rng.standard_normal((4, 3))
        r = np.array([[np.linalg.norm(a - b) for b in z] for a in x])
        ar = np.sqrt(5) * r / sigma
        expected = (1 + ar + ar**2 / 3) * np.exp(-ar)
        np.testing.assert_allclose(k(x, z), expected, atol=1e-12)

    def test_normalized(self, rng):
        for nu in (0.5, 1.5, 2.5):
            k = MaternKernel(bandwidth=1.0, nu=nu)
            x = rng.standard_normal((6, 3))
            np.testing.assert_allclose(k.diag(x), 1.0)

    def test_psd(self, rng):
        x = rng.standard_normal((30, 4))
        for nu in (0.5, 1.5, 2.5):
            mat = MaternKernel(bandwidth=1.5, nu=nu)(x, x)
            eigs = np.linalg.eigvalsh((mat + mat.T) / 2)
            assert eigs.min() > -1e-9

    def test_unsupported_nu_rejected(self):
        with pytest.raises(ConfigurationError, match="nu"):
            MaternKernel(bandwidth=1.0, nu=2.0)

    def test_registry(self):
        k = make_kernel("matern", bandwidth=3.0, nu=1.5)
        assert isinstance(k, MaternKernel)
        assert k.params() == {"bandwidth": 3.0, "nu": 1.5}


class TestSmoothnessSpectrum:
    def test_smoothness_orders_kernels_between_laplacian_and_gaussian(
        self, rng
    ):
        """At moderate distance: Laplacian < Matérn-3/2 < Matérn-5/2 <
        Gaussian in value close-in reverses far out — concretely, tail
        heaviness decreases with nu."""
        far = np.zeros((1, 4)), np.full((1, 4), 6.0)
        vals = [
            MaternKernel(bandwidth=1.0, nu=0.5)(*far)[0, 0],
            MaternKernel(bandwidth=1.0, nu=1.5)(*far)[0, 0],
            MaternKernel(bandwidth=1.0, nu=2.5)(*far)[0, 0],
            GaussianKernel(bandwidth=1.0)(*far)[0, 0],
        ]
        # Heavier tails for rougher kernels at large distance... except the
        # polynomial prefactors; compare against the Gaussian only:
        assert vals[0] > vals[-1]
        assert vals[1] > vals[-1]
        assert vals[2] > vals[-1]

    def test_m_star_decreases_with_smoothness(self, rng):
        """The paper's Section-5.5 effect as a continuum: rougher kernels
        (smaller nu) have slower eigendecay and larger m*."""
        from repro.core.spectrum import critical_batch_size

        x = rng.standard_normal((400, 8))
        m_stars = [
            critical_batch_size(
                MaternKernel(bandwidth=3.0, nu=nu), x, sample_size=400,
                seed=0,
            )
            for nu in (0.5, 1.5, 2.5)
        ]
        gauss = critical_batch_size(
            GaussianKernel(bandwidth=3.0), x, sample_size=400, seed=0
        )
        assert m_stars[0] > m_stars[1] > m_stars[2] > gauss

    def test_trains_with_eigenpro2(self, small_dataset):
        from repro.core.eigenpro2 import EigenPro2

        ds = small_dataset
        model = EigenPro2(MaternKernel(bandwidth=3.0, nu=1.5), seed=0)
        model.fit(ds.x_train, ds.y_train, epochs=4)
        assert model.classification_error(ds.x_test, ds.labels_test) < 0.5
