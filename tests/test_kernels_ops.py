"""Tests for blocked kernel-matrix operations (memory-bounded paths)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel
from repro.kernels.ops import (
    iter_row_blocks,
    kernel_matrix,
    kernel_matvec,
    predict_in_blocks,
    row_block_sizes,
)


class TestRowBlockSizes:
    def test_sizes_sum_to_n_rows(self):
        assert sum(row_block_sizes(1000, 37, max_scalars=1234)) == 1000

    def test_each_block_within_budget(self):
        for b in row_block_sizes(500, 64, max_scalars=1000):
            assert b * 64 <= 1000 or b == 1

    def test_single_block_when_budget_large(self):
        assert row_block_sizes(10, 10, max_scalars=10**9) == [10]

    def test_empty_for_zero_rows(self):
        assert row_block_sizes(0, 10) == []

    def test_minimum_one_row_per_block(self):
        # Budget smaller than one row still yields usable blocks.
        assert row_block_sizes(5, 100, max_scalars=10) == [1] * 5

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            row_block_sizes(5, 5, max_scalars=0)

    def test_rejects_negative_dims(self):
        with pytest.raises(ConfigurationError):
            row_block_sizes(-1, 5)

    def test_iter_row_blocks_covers_range(self):
        slices = list(iter_row_blocks(100, 7, max_scalars=50))
        covered = np.concatenate([np.arange(s.start, s.stop) for s in slices])
        np.testing.assert_array_equal(covered, np.arange(100))


class TestKernelMatrix:
    def test_matches_direct_evaluation(self, rng):
        k = GaussianKernel(bandwidth=2.0)
        x = rng.standard_normal((40, 6))
        z = rng.standard_normal((25, 6))
        np.testing.assert_allclose(
            kernel_matrix(k, x, z, max_scalars=100), k(x, z), atol=1e-12
        )

    def test_out_buffer_reused(self, rng):
        k = GaussianKernel(bandwidth=2.0)
        x = rng.standard_normal((10, 3))
        out = np.empty((10, 10))
        res = kernel_matrix(k, x, out=out)
        assert res is out

    def test_bad_out_shape_raises(self, rng):
        k = GaussianKernel(bandwidth=2.0)
        x = rng.standard_normal((10, 3))
        with pytest.raises(ConfigurationError):
            kernel_matrix(k, x, out=np.empty((3, 3)))


class TestKernelMatvec:
    def test_matches_dense_product_2d(self, rng):
        k = GaussianKernel(bandwidth=1.5)
        x = rng.standard_normal((30, 5))
        centers = rng.standard_normal((20, 5))
        w = rng.standard_normal((20, 3))
        np.testing.assert_allclose(
            kernel_matvec(k, x, centers, w, max_scalars=64),
            k(x, centers) @ w,
            atol=1e-10,
        )

    def test_matches_dense_product_1d(self, rng):
        k = GaussianKernel(bandwidth=1.5)
        x = rng.standard_normal((15, 4))
        centers = rng.standard_normal((10, 4))
        w = rng.standard_normal(10)
        out = kernel_matvec(k, x, centers, w, max_scalars=32)
        assert out.shape == (15,)
        np.testing.assert_allclose(out, k(x, centers) @ w, atol=1e-10)

    def test_block_size_does_not_change_result(self, rng):
        k = GaussianKernel(bandwidth=1.0)
        x = rng.standard_normal((23, 4))
        c = rng.standard_normal((11, 4))
        w = rng.standard_normal((11, 2))
        full = kernel_matvec(k, x, c, w, max_scalars=10**9)
        tiny = kernel_matvec(k, x, c, w, max_scalars=12)
        np.testing.assert_allclose(full, tiny, atol=1e-12)

    def test_weight_center_mismatch_raises(self, rng):
        k = GaussianKernel(bandwidth=1.0)
        with pytest.raises(ConfigurationError, match="weights"):
            kernel_matvec(
                k,
                rng.standard_normal((5, 3)),
                rng.standard_normal((4, 3)),
                rng.standard_normal(7),
            )

    def test_predict_alias(self, rng):
        k = GaussianKernel(bandwidth=1.0)
        x = rng.standard_normal((8, 3))
        c = rng.standard_normal((6, 3))
        w = rng.standard_normal((6, 2))
        np.testing.assert_allclose(
            predict_in_blocks(k, c, w, x), kernel_matvec(k, x, c, w), atol=1e-12
        )
