"""Edge-case regression tests for the blocked-operation layer.

Covers :func:`repro.kernels.ops.row_block_sizes` corner cases and the
memory contract of :func:`predict_in_blocks`: streamed temporaries must
respect the scalar budget (:data:`~repro.config.DEFAULT_BLOCK_SCALARS` by
default), which the shared :class:`~repro.kernels.ops.BlockWorkspace`
makes directly observable via its per-thread high-water mark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_BLOCK_SCALARS
from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.kernels.ops import (
    block_workspace,
    kernel_matvec,
    predict_in_blocks,
    row_block_sizes,
)


class TestRowBlockSizesEdges:
    def test_zero_rows_empty(self):
        assert row_block_sizes(0, 10**9, max_scalars=1) == []

    def test_zero_rows_zero_cols(self):
        assert row_block_sizes(0, 0) == []

    def test_zero_cols_counts_as_width_one(self):
        # Degenerate zero-width blocks are scheduled as if one scalar per
        # row, so the budget still bounds block height.
        sizes = row_block_sizes(7, 0, max_scalars=5)
        assert sum(sizes) == 7
        assert max(sizes) <= 5

    def test_pathological_wide_row(self):
        """One row wider than the whole budget still gets scheduled —
        one row at a time, the documented over-budget escape hatch."""
        sizes = row_block_sizes(3, 1_000, max_scalars=10)
        assert sizes == [1, 1, 1]

    def test_budget_exactly_divisible(self):
        """Budget an exact multiple of the width: full blocks, no runt."""
        sizes = row_block_sizes(12, 5, max_scalars=20)  # 4 rows per block
        assert sizes == [4, 4, 4]
        assert all(b * 5 <= 20 for b in sizes)

    def test_budget_equals_one_row(self):
        assert row_block_sizes(4, 6, max_scalars=6) == [1, 1, 1, 1]

    def test_runt_block_when_not_divisible(self):
        sizes = row_block_sizes(10, 3, max_scalars=9)  # 3 rows per block
        assert sizes == [3, 3, 3, 1]

    def test_rejects_negative_cols(self):
        with pytest.raises(ConfigurationError):
            row_block_sizes(5, -2)


class TestWorkspaceBudget:
    @pytest.fixture(autouse=True)
    def fresh_workspace(self):
        block_workspace().reset()
        yield
        block_workspace().reset()

    def test_predict_in_blocks_respects_default_budget(self):
        """Peak temporary allocation stays under DEFAULT_BLOCK_SCALARS."""
        rng = np.random.default_rng(0)
        centers = rng.standard_normal((300, 8))
        w = rng.standard_normal((300, 2))
        x = rng.standard_normal((500, 8))
        predict_in_blocks(GaussianKernel(bandwidth=2.0), centers, w, x)
        assert 0 < block_workspace().peak_scalars <= DEFAULT_BLOCK_SCALARS

    def test_tight_budget_respected(self):
        rng = np.random.default_rng(1)
        centers = rng.standard_normal((40, 4))
        w = rng.standard_normal(40)
        x = rng.standard_normal((100, 4))
        budget = 200  # 5 rows of 40 columns per block
        kernel_matvec(
            GaussianKernel(bandwidth=2.0), x, centers, w, max_scalars=budget
        )
        assert block_workspace().peak_scalars <= budget

    def test_pathological_row_exceeds_by_one_row_only(self):
        """A single row wider than the budget allocates exactly one row."""
        rng = np.random.default_rng(2)
        centers = rng.standard_normal((50, 3))
        w = rng.standard_normal(50)
        x = rng.standard_normal((4, 3))
        kernel_matvec(
            GaussianKernel(bandwidth=2.0), x, centers, w, max_scalars=10
        )
        assert block_workspace().peak_scalars == 50  # one (1, 50) row block

    def test_buffer_reused_across_blocks(self):
        """Streaming many equal blocks must not grow the pool."""
        rng = np.random.default_rng(3)
        centers = rng.standard_normal((64, 4))
        w = rng.standard_normal((64, 1))
        x = rng.standard_normal((1024, 4))
        kernel_matvec(
            GaussianKernel(bandwidth=2.0), x, centers, w, max_scalars=1024
        )
        # 16-row blocks of 64 columns: exactly one 1024-scalar buffer.
        assert block_workspace().peak_scalars == 1024

    def test_results_unchanged_by_reuse(self):
        """Workspace recycling must not corrupt later blocks (values are
        contracted before the buffer is reused)."""
        rng = np.random.default_rng(4)
        centers = rng.standard_normal((30, 5))
        w = rng.standard_normal((30, 2))
        x = rng.standard_normal((90, 5))
        k = LaplacianKernel(bandwidth=1.5)
        tiny = kernel_matvec(k, x, centers, w, max_scalars=60)
        full = kernel_matvec(k, x, centers, w, max_scalars=10**9)
        np.testing.assert_allclose(tiny, full, atol=1e-12)

    def test_reset_clears_peak(self):
        rng = np.random.default_rng(5)
        kernel_matvec(
            GaussianKernel(bandwidth=2.0),
            rng.standard_normal((10, 3)),
            rng.standard_normal((10, 3)),
            rng.standard_normal(10),
        )
        assert block_workspace().peak_scalars > 0
        block_workspace().reset()
        assert block_workspace().peak_scalars == 0
