"""Unit tests for blocked pairwise distance computation."""

import numpy as np
import pytest

from repro.kernels.pairwise import euclidean_distances, sq_euclidean_distances


def _brute_sq(x, z):
    return np.array([[np.sum((a - b) ** 2) for b in z] for a in x])


class TestSqEuclidean:
    def test_matches_brute_force(self, rng):
        x = rng.standard_normal((17, 6))
        z = rng.standard_normal((9, 6))
        np.testing.assert_allclose(
            sq_euclidean_distances(x, z), _brute_sq(x, z), atol=1e-10
        )

    def test_symmetric_case(self, rng):
        x = rng.standard_normal((13, 4))
        d = sq_euclidean_distances(x, x)
        np.testing.assert_allclose(d, d.T, atol=1e-10)

    def test_zero_diagonal(self, rng):
        x = rng.standard_normal((11, 5))
        d = sq_euclidean_distances(x, x)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)

    def test_non_negative_even_for_identical_points(self):
        # The GEMM expansion can go slightly negative; must be clipped.
        x = np.full((50, 20), 1.234567)
        d = sq_euclidean_distances(x, x)
        assert (d >= 0).all()

    def test_precomputed_norms_used(self, rng):
        x = rng.standard_normal((8, 3))
        z = rng.standard_normal((5, 3))
        xn = np.einsum("ij,ij->i", x, x)
        zn = np.einsum("ij,ij->i", z, z)
        np.testing.assert_allclose(
            sq_euclidean_distances(x, z, xn, zn),
            sq_euclidean_distances(x, z),
            atol=1e-12,
        )

    def test_single_point_rows(self, rng):
        x = rng.standard_normal((1, 4))
        z = rng.standard_normal((6, 4))
        d = sq_euclidean_distances(x, z)
        assert d.shape == (1, 6)

    def test_translation_invariance(self, rng):
        x = rng.standard_normal((7, 5))
        z = rng.standard_normal((6, 5))
        shift = rng.standard_normal(5)
        np.testing.assert_allclose(
            sq_euclidean_distances(x + shift, z + shift),
            sq_euclidean_distances(x, z),
            atol=1e-8,
        )


class TestEuclidean:
    def test_is_sqrt_of_squared(self, rng):
        x = rng.standard_normal((10, 4))
        z = rng.standard_normal((12, 4))
        np.testing.assert_allclose(
            euclidean_distances(x, z) ** 2,
            sq_euclidean_distances(x, z),
            atol=1e-9,
        )

    def test_triangle_inequality(self, rng):
        pts = rng.standard_normal((12, 3))
        d = euclidean_distances(pts, pts)
        for i in range(12):
            for j in range(12):
                for k in range(12):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9
