"""Tests for :class:`repro.kernels.ops.KernelMatvecPlan`.

The plan hoists the per-call :func:`~repro.kernels.ops.kernel_matvec`
prologue; its contract is *bitwise* equality with a fresh call for any
input whose dtype matches the exemplar, and correct (fallback) results
otherwise.  :meth:`~repro.kernels.ops.KernelMatvecPlan.run_segments`
additionally promises that each segment's output rows are bitwise-equal
to evaluating that segment alone — the invariant the serving engine's
batched-vs-solo parity rests on.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.instrument import OpMeter, meter_scope
from repro.kernels import CauchyKernel, GaussianKernel, LaplacianKernel
from repro.kernels.ops import KernelMatvecPlan, kernel_matvec

KERNELS = [
    GaussianKernel(bandwidth=2.0),
    LaplacianKernel(bandwidth=3.0),
    CauchyKernel(bandwidth=2.5),  # no fused spec: generic block loop
]


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(42)
    z = rng.standard_normal((151, 6))
    w2 = rng.standard_normal((151, 3))
    x = rng.standard_normal((40, 6))
    return z, w2, x


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: type(k).__name__)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("weights_1d", [False, True])
def test_plan_matches_kernel_matvec(arrays, kernel, dtype, weights_1d):
    z, w2, x = arrays
    z, x = z.astype(dtype), x.astype(dtype)
    w = (w2[:, 0] if weights_1d else w2).astype(dtype)
    plan = KernelMatvecPlan(kernel, z, w, x_like=x)
    want = kernel_matvec(kernel, x, z, w)
    got = plan(x)
    assert got.dtype == want.dtype
    assert got.shape == want.shape
    np.testing.assert_array_equal(got, want)


def test_plan_matches_multiblock(arrays):
    """Tight block budget (several blocks per call) keeps parity."""
    z, w2, x = arrays
    budget = z.shape[0] * 4
    plan = KernelMatvecPlan(
        GaussianKernel(bandwidth=2.0), z, w2, max_scalars=budget, x_like=x
    )
    want = kernel_matvec(GaussianKernel(bandwidth=2.0), x, z, w2,
                         max_scalars=budget)
    np.testing.assert_array_equal(plan(x), want)


def test_plan_dtype_mismatch_falls_back(arrays):
    """A call whose dtype differs from the exemplar takes the fresh
    kernel_matvec path — correct result, original dtype semantics."""
    z, w2, x = arrays
    kernel = GaussianKernel(bandwidth=2.0)
    plan = KernelMatvecPlan(kernel, z, w2, x_like=x)  # f64 exemplar
    x32 = x.astype(np.float32)
    want = kernel_matvec(kernel, x32, z, w2)
    got = plan(x32)
    assert got.dtype == want.dtype
    np.testing.assert_array_equal(got, want)


def test_plan_weight_rows_mismatch_raises(arrays):
    z, w2, x = arrays
    with pytest.raises(ConfigurationError, match="rows"):
        KernelMatvecPlan(GaussianKernel(bandwidth=2.0), z, w2[:-1], x_like=x)


def test_kernel_matvec_delegates_to_plan(arrays):
    """The one-shot function and a throwaway plan are the same path —
    they cannot drift."""
    z, w2, x = arrays
    kernel = LaplacianKernel(bandwidth=3.0)
    np.testing.assert_array_equal(
        kernel_matvec(kernel, x, z, w2),
        KernelMatvecPlan(kernel, z, w2, x_like=x)(x),
    )


# --------------------------------------------------------------------------
# run_segments
# --------------------------------------------------------------------------


def _bounds_for(rows: list[int]) -> tuple[tuple[int, int], ...]:
    bounds, lo = [], 0
    for r in rows:
        bounds.append((lo, lo + r))
        lo += r
    return tuple(bounds)


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: type(k).__name__)
@pytest.mark.parametrize("weights_1d", [False, True])
def test_run_segments_bitwise_per_segment(arrays, kernel, weights_1d):
    """Each segment's rows == evaluating that segment alone (incl. the
    generic no-fused-spec path and zero-length segments)."""
    z, w2, x = arrays
    w = w2[:, 0] if weights_1d else w2
    plan = KernelMatvecPlan(kernel, z, w, x_like=x)
    bounds = _bounds_for([3, 0, 11, 1, 0, 25])
    assert bounds[-1][1] == x.shape[0]
    out = plan.run_segments(x, bounds)
    solo = KernelMatvecPlan(kernel, z, w, x_like=x)
    for lo, hi in bounds:
        np.testing.assert_array_equal(out[lo:hi], solo(x[lo:hi]))
    # A single full-range segment is exactly the bulk call.
    np.testing.assert_array_equal(
        plan.run_segments(x, ((0, x.shape[0]),)), plan(x)
    )


def test_run_segments_multiblock_segment(arrays):
    """A segment larger than one block budget streams internally and
    still matches its solo evaluation."""
    z, w2, x = arrays
    kernel = GaussianKernel(bandwidth=2.0)
    budget = z.shape[0] * 4  # ~4 rows per block, segments span blocks
    plan = KernelMatvecPlan(kernel, z, w2, max_scalars=budget, x_like=x)
    bounds = _bounds_for([17, 23])
    out = plan.run_segments(x, bounds)
    solo = KernelMatvecPlan(kernel, z, w2, max_scalars=budget, x_like=x)
    for lo, hi in bounds:
        np.testing.assert_array_equal(out[lo:hi], solo(x[lo:hi]))


def test_run_segments_empty_bounds(arrays):
    z, w2, x = arrays
    plan = KernelMatvecPlan(GaussianKernel(bandwidth=2.0), z, w2, x_like=x)
    out = plan.run_segments(x[:0], ())
    assert out.shape == (0, w2.shape[1])


def test_run_segments_dtype_mismatch_fallback(arrays):
    """The generic fallback (exemplar mismatch) assigns per-segment
    solo results — still bitwise per segment."""
    z, w2, x = arrays
    kernel = GaussianKernel(bandwidth=2.0)
    plan = KernelMatvecPlan(kernel, z, w2, x_like=x)  # f64 exemplar
    x32 = x.astype(np.float32)
    bounds = _bounds_for([8, 0, 32])
    out = plan.run_segments(x32, bounds)
    for lo, hi in bounds:
        np.testing.assert_array_equal(
            out[lo:hi], kernel_matvec(kernel, x32[lo:hi], z, w2)
        )


def test_run_segments_op_counts_match_bulk(arrays):
    """Segmented evaluation records the same shape-derived op counts as
    one bulk call — accounting is amortised, not lost."""
    z, w2, x = arrays
    kernel = GaussianKernel(bandwidth=2.0)
    plan = KernelMatvecPlan(kernel, z, w2, x_like=x)
    bulk_meter, seg_meter = OpMeter(), OpMeter()
    with meter_scope(bulk_meter):
        plan(x)
    with meter_scope(seg_meter):
        plan.run_segments(x, _bounds_for([10, 0, 30]))
    assert bulk_meter.as_dict() == seg_meter.as_dict()
    assert bulk_meter.as_dict().get("kernel_eval", 0) > 0
