"""Property-based tests (hypothesis) on kernel invariants.

Positive-definiteness, symmetry and boundedness are the structural
assumptions everything in the paper rests on; these run against random
data and random bandwidths.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import CauchyKernel, GaussianKernel, LaplacianKernel

KERNEL_CLASSES = [GaussianKernel, LaplacianKernel, CauchyKernel]

points = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 12), st.integers(1, 6)),
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
)
bandwidths = st.floats(0.1, 25.0, allow_nan=False, allow_infinity=False)
kernel_cls = st.sampled_from(KERNEL_CLASSES)


@given(points, bandwidths, kernel_cls)
@settings(max_examples=60, deadline=None)
def test_kernel_matrix_symmetric(x, bw, cls):
    k = cls(bandwidth=bw)(x, x)
    np.testing.assert_allclose(k, k.T, atol=1e-10)


@given(points, bandwidths, kernel_cls)
@settings(max_examples=60, deadline=None)
def test_kernel_matrix_psd(x, bw, cls):
    k = cls(bandwidth=bw)(x, x)
    eigs = np.linalg.eigvalsh((k + k.T) / 2)
    assert eigs.min() >= -1e-8 * max(1.0, eigs.max())


@given(points, bandwidths, kernel_cls)
@settings(max_examples=60, deadline=None)
def test_radial_kernel_bounded_by_one(x, bw, cls):
    vals = cls(bandwidth=bw)(x, x)
    assert vals.max() <= 1.0 + 1e-12
    assert vals.min() >= 0.0


@given(points, bandwidths, kernel_cls)
@settings(max_examples=60, deadline=None)
def test_normalized_diag_exactly_one(x, bw, cls):
    kern = cls(bandwidth=bw)
    np.testing.assert_allclose(kern.diag(x), 1.0)
    assert kern.beta(x) == 1.0


@given(
    points,
    st.floats(0.5, 25.0, allow_nan=False, allow_infinity=False),
    kernel_cls,
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_shift_invariance(x, bw, cls, seed):
    # Tolerance accommodates the ||x||^2 + ||z||^2 - 2<x,z> cancellation,
    # which the sharp exponential amplifies at small bandwidths.
    shift = np.random.default_rng(seed).uniform(-5, 5, size=x.shape[1])
    kern = cls(bandwidth=bw)
    np.testing.assert_allclose(kern(x + shift, x + shift), kern(x, x), atol=2e-6)


@given(points, bandwidths, kernel_cls)
@settings(max_examples=40, deadline=None)
def test_cauchy_schwarz(x, bw, cls):
    """|k(x,z)|^2 <= k(x,x) k(z,z) for any PSD kernel."""
    k = cls(bandwidth=bw)
    mat = k(x, x)
    d = k.diag(x)
    assert (mat**2 <= np.outer(d, d) + 1e-9).all()


@given(
    points,
    st.floats(0.5, 5.0),
    st.floats(1.05, 4.0),
    kernel_cls,
)
@settings(max_examples=40, deadline=None)
def test_larger_bandwidth_larger_values(x, bw, factor, cls):
    """Off-diagonal kernel values increase monotonically with bandwidth
    for all radial families used here."""
    small = cls(bandwidth=bw)(x, x)
    large = cls(bandwidth=bw * factor)(x, x)
    off = ~np.eye(x.shape[0], dtype=bool)
    assert (large[off] >= small[off] - 1e-12).all()
