"""Value-level correctness of each kernel against direct formulas."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import (
    CauchyKernel,
    GaussianKernel,
    LaplacianKernel,
    PolynomialKernel,
    make_kernel,
)


class TestGaussian:
    def test_matches_formula(self, rng):
        sigma = 1.7
        k = GaussianKernel(bandwidth=sigma)
        x = rng.standard_normal((6, 4))
        z = rng.standard_normal((5, 4))
        expected = np.array(
            [
                [np.exp(-np.sum((a - b) ** 2) / (2 * sigma**2)) for b in z]
                for a in x
            ]
        )
        np.testing.assert_allclose(k(x, z), expected, atol=1e-12)

    def test_self_similarity_is_one(self, rng):
        k = GaussianKernel(bandwidth=3.0)
        x = rng.standard_normal((4, 3))
        np.testing.assert_allclose(np.diag(k(x, x)), 1.0, atol=1e-12)

    def test_diag_matches_matrix_diagonal(self, rng):
        k = GaussianKernel(bandwidth=2.5)
        x = rng.standard_normal((7, 3))
        np.testing.assert_allclose(k.diag(x), np.diag(k(x, x)), atol=1e-12)

    def test_values_in_unit_interval(self, rng):
        k = GaussianKernel(bandwidth=0.8)
        x = rng.standard_normal((10, 5))
        vals = k(x, x)
        assert (vals >= 0).all() and (vals <= 1 + 1e-12).all()

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_rejects_bad_bandwidth(self, bad):
        with pytest.raises(ConfigurationError):
            GaussianKernel(bandwidth=bad)


class TestLaplacian:
    def test_matches_formula(self, rng):
        sigma = 2.2
        k = LaplacianKernel(bandwidth=sigma)
        x = rng.standard_normal((5, 4))
        z = rng.standard_normal((6, 4))
        expected = np.array(
            [
                [np.exp(-np.linalg.norm(a - b) / sigma) for b in z]
                for a in x
            ]
        )
        np.testing.assert_allclose(k(x, z), expected, atol=1e-12)

    def test_heavier_tail_than_gaussian(self, rng):
        """At large distance the Laplacian dominates the Gaussian — the
        slower spectral decay behind its larger m* (paper Section 5.5)."""
        sigma = 1.0
        g = GaussianKernel(bandwidth=sigma)
        lap = LaplacianKernel(bandwidth=sigma)
        far = np.array([[0.0] * 4, [5.0] * 4])
        assert lap(far[:1], far[1:])[0, 0] > g(far[:1], far[1:])[0, 0]

    def test_is_normalized(self):
        assert LaplacianKernel(bandwidth=1.0).is_normalized
        assert LaplacianKernel(bandwidth=1.0).is_shift_invariant


class TestCauchy:
    def test_matches_formula(self, rng):
        sigma = 1.3
        k = CauchyKernel(bandwidth=sigma)
        x = rng.standard_normal((4, 3))
        z = rng.standard_normal((5, 3))
        expected = np.array(
            [
                [1.0 / (1.0 + np.sum((a - b) ** 2) / sigma**2) for b in z]
                for a in x
            ]
        )
        np.testing.assert_allclose(k(x, z), expected, atol=1e-12)

    def test_heaviest_tail(self):
        far = np.zeros((1, 3)), np.full((1, 3), 6.0)
        c = CauchyKernel(bandwidth=1.0)(*far)[0, 0]
        lap = LaplacianKernel(bandwidth=1.0)(*far)[0, 0]
        assert c > lap


class TestPolynomial:
    def test_matches_formula(self, rng):
        k = PolynomialKernel(degree=3, gamma=0.5, coef0=2.0)
        x = rng.standard_normal((4, 6))
        z = rng.standard_normal((3, 6))
        expected = (0.5 * (x @ z.T) + 2.0) ** 3
        np.testing.assert_allclose(k(x, z), expected, atol=1e-10)

    def test_diag(self, rng):
        k = PolynomialKernel(degree=2, gamma=0.3, coef0=1.0)
        x = rng.standard_normal((6, 4))
        np.testing.assert_allclose(k.diag(x), np.diag(k(x, x)), atol=1e-10)

    def test_not_normalized(self):
        assert not PolynomialKernel().is_normalized
        assert not PolynomialKernel().is_shift_invariant

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"degree": 0},
            {"gamma": 0.0},
            {"gamma": -1.0},
            {"coef0": -0.5},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            PolynomialKernel(**kwargs)

    def test_linear_special_case(self, rng):
        k = PolynomialKernel(degree=1, gamma=1.0, coef0=0.0)
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(k(x, x), x @ x.T, atol=1e-10)


class TestRegistry:
    def test_make_kernel_by_name(self):
        k = make_kernel("gaussian", bandwidth=4.0)
        assert isinstance(k, GaussianKernel)
        assert k.bandwidth == 4.0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            make_kernel("linear-ish")

    def test_equality_and_hash(self):
        a = GaussianKernel(bandwidth=2.0)
        b = GaussianKernel(bandwidth=2.0)
        c = GaussianKernel(bandwidth=3.0)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != LaplacianKernel(bandwidth=2.0)


class TestShapeHandling:
    def test_1d_input_promoted(self, any_kernel, rng):
        x = rng.standard_normal(5)
        out = any_kernel(x, rng.standard_normal((3, 5)))
        assert out.shape == (1, 3)

    def test_dimension_mismatch_raises(self, any_kernel, rng):
        with pytest.raises(ConfigurationError, match="feature dimensions"):
            any_kernel(rng.standard_normal((3, 4)), rng.standard_normal((3, 5)))

    def test_default_z_is_x(self, any_kernel, rng):
        x = rng.standard_normal((6, 4))
        np.testing.assert_allclose(any_kernel(x), any_kernel(x, x), atol=1e-12)
