"""Tests for top-q eigensystem solvers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel
from repro.linalg import randomized_top_eigensystem, top_eigensystem


def _psd_matrix(rng, n=40, decay=2.0):
    """Random PSD matrix with power-law spectrum."""
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    vals = np.arange(1, n + 1, dtype=float) ** (-decay)
    return (q * vals) @ q.T, vals, q


class TestDense:
    def test_matches_numpy_eigh(self, rng):
        a, vals, _ = _psd_matrix(rng)
        got_vals, got_vecs = top_eigensystem(a, 5, method="dense")
        np.testing.assert_allclose(got_vals, vals[:5], atol=1e-10)
        for i in range(5):
            resid = a @ got_vecs[:, i] - got_vals[i] * got_vecs[:, i]
            assert np.linalg.norm(resid) < 1e-9

    def test_descending_order(self, rng):
        a, _, _ = _psd_matrix(rng)
        vals, _ = top_eigensystem(a, 8, method="dense")
        assert (np.diff(vals) <= 1e-12).all()

    def test_orthonormal_vectors(self, rng):
        a, _, _ = _psd_matrix(rng)
        _, vecs = top_eigensystem(a, 6, method="dense")
        np.testing.assert_allclose(vecs.T @ vecs, np.eye(6), atol=1e-9)

    def test_full_q_allowed(self, rng):
        a, vals, _ = _psd_matrix(rng, n=10)
        got, _ = top_eigensystem(a, 10, method="dense")
        np.testing.assert_allclose(got, vals, atol=1e-10)

    @pytest.mark.parametrize("q", [0, -1, 41])
    def test_q_out_of_range(self, rng, q):
        a, _, _ = _psd_matrix(rng)
        with pytest.raises(ConfigurationError):
            top_eigensystem(a, q)

    def test_rejects_non_square(self, rng):
        with pytest.raises(ConfigurationError):
            top_eigensystem(rng.standard_normal((4, 5)), 2)

    def test_unknown_method(self, rng):
        a, _, _ = _psd_matrix(rng)
        with pytest.raises(ConfigurationError):
            top_eigensystem(a, 2, method="magic")


class TestRandomized:
    def test_close_to_dense_with_decay(self):
        # Pinned generator (not the session ``rng`` fixture): the sketch
        # accuracy of the randomized solver depends on the drawn matrix,
        # and this test was order-dependent on the shared fixture state.
        a, vals, _ = _psd_matrix(np.random.default_rng(1234), n=60, decay=2.5)
        got_vals, got_vecs = randomized_top_eigensystem(a, 5, seed=1)
        np.testing.assert_allclose(got_vals, vals[:5], rtol=1e-6)
        # Eigenvector quality via the residual (sign-agnostic).
        for i in range(5):
            resid = a @ got_vecs[:, i] - got_vals[i] * got_vecs[:, i]
            assert np.linalg.norm(resid) < 1e-5

    def test_kernel_matrix_spectrum(self, rng):
        """On a real kernel matrix randomized and dense agree to high
        precision — kernel spectra decay fast."""
        x = rng.standard_normal((80, 5))
        kmat = GaussianKernel(bandwidth=2.0)(x, x)
        dense_vals, _ = top_eigensystem(kmat, 6, method="dense")
        rand_vals, _ = randomized_top_eigensystem(
            kmat, 6, n_power_iter=5, seed=0
        )
        np.testing.assert_allclose(rand_vals, dense_vals, rtol=1e-6)

    def test_deterministic_given_seed(self, rng):
        a, _, _ = _psd_matrix(rng)
        v1, _ = randomized_top_eigensystem(a, 4, seed=42)
        v2, _ = randomized_top_eigensystem(a, 4, seed=42)
        np.testing.assert_array_equal(v1, v2)

    def test_auto_dispatch_small_uses_dense(self, rng):
        a, vals, _ = _psd_matrix(rng, n=30)
        got, _ = top_eigensystem(a, 3, method="auto")
        np.testing.assert_allclose(got, vals[:3], atol=1e-10)
