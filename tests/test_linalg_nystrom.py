"""Tests for the Nyström extension — the core approximation of Section 4."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.linalg import NystromExtension, nystrom_extension, top_eigensystem


@pytest.fixture(scope="module")
def gauss_data():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((300, 6))
    return GaussianKernel(bandwidth=2.5), x


class TestFactory:
    def test_shapes(self, gauss_data):
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, subsample_size=64, q=10, seed=0)
        assert ext.s == 64
        assert ext.q == 10
        assert ext.points.shape == (64, 6)
        assert ext.eigvals.shape == (10,)
        assert ext.eigvecs.shape == (64, 10)
        assert ext.indices.shape == (64,)

    def test_explicit_indices(self, gauss_data):
        kernel, x = gauss_data
        idx = np.arange(50)
        ext = nystrom_extension(kernel, x, 50, 5, indices=idx)
        np.testing.assert_array_equal(ext.indices, idx)
        np.testing.assert_allclose(ext.points, x[:50])

    def test_duplicate_indices_rejected(self, gauss_data):
        kernel, x = gauss_data
        with pytest.raises(ConfigurationError, match="unique"):
            nystrom_extension(kernel, x, 4, 2, indices=np.array([0, 1, 1, 2]))

    def test_q_must_be_below_s(self, gauss_data):
        kernel, x = gauss_data
        with pytest.raises(ConfigurationError):
            nystrom_extension(kernel, x, 10, 10)

    def test_subsample_size_bounds(self, gauss_data):
        kernel, x = gauss_data
        with pytest.raises(ConfigurationError):
            nystrom_extension(kernel, x, 0, 1)
        with pytest.raises(ConfigurationError):
            nystrom_extension(kernel, x, len(x) + 1, 1)


class TestEigenvalueEstimates:
    def test_operator_eigenvalues_scale(self, gauss_data):
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, 100, 5, seed=0)
        np.testing.assert_allclose(
            ext.operator_eigenvalues, ext.eigvals / 100, atol=1e-14
        )

    def test_estimates_converge_with_s(self, gauss_data):
        """lambda_i ≈ sigma_i/s should approach the full-matrix values
        lambda_i(K)/n as s grows — the Nyström consistency property."""
        kernel, x = gauss_data
        n = x.shape[0]
        full_vals, _ = top_eigensystem(kernel(x, x), 4)
        truth = full_vals / n
        errors = []
        for s in (40, 150, n):
            ext = nystrom_extension(
                kernel, x, s, 4, indices=np.arange(s)
            )
            errors.append(np.abs(ext.operator_eigenvalues - truth).max())
        assert errors[-1] < 1e-10  # s = n is exact
        assert errors[1] < errors[0] * 1.5  # roughly improving

    def test_full_subsample_exact(self, gauss_data):
        kernel, x = gauss_data
        n = x.shape[0]
        ext = nystrom_extension(kernel, x, n, 6, indices=np.arange(n))
        full_vals, _ = top_eigensystem(kernel(x, x), 6)
        np.testing.assert_allclose(ext.eigvals, full_vals, atol=1e-10)


class TestEigenfunctions:
    def test_l2_normalization_on_subsample(self, gauss_data):
        """Empirical L2 norm over the subsample of ẽ_i should be ≈ 1:
        (1/s) sum_j ẽ_i(x_rj)^2 = 1."""
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, 80, 5, seed=0)
        vals = ext.eigenfunction_values(ext.points)  # (s, q)
        norms = np.mean(vals**2, axis=0)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-8)

    def test_values_on_subsample_match_eigvecs(self, gauss_data):
        """On the subsample itself ẽ_i(x_rj) = sqrt(s) * e_i[j]."""
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, 60, 4, seed=0)
        vals = ext.eigenfunction_values(ext.points)
        np.testing.assert_allclose(
            vals, np.sqrt(60) * ext.eigvecs, atol=1e-8
        )

    def test_rkhs_coefficients_unit_norm(self, gauss_data):
        """||ê_i||_H^2 = c_i^T K_s c_i must be 1."""
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, 70, 5, seed=0)
        coef = ext.rkhs_coefficients()
        k_s = kernel(ext.points, ext.points)
        gram = coef.T @ k_s @ coef
        np.testing.assert_allclose(np.diag(gram), 1.0, rtol=1e-8)

    def test_feature_map_shape(self, gauss_data):
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, 30, 3, seed=0)
        assert ext.feature_map(x[:7]).shape == (7, 30)


class TestTruncation:
    def test_truncated_keeps_top_pairs(self, gauss_data):
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, 50, 10, seed=0)
        t = ext.truncated(4)
        assert t.q == 4
        np.testing.assert_array_equal(t.eigvals, ext.eigvals[:4])
        np.testing.assert_array_equal(t.eigvecs, ext.eigvecs[:, :4])

    def test_truncated_bounds(self, gauss_data):
        kernel, x = gauss_data
        ext = nystrom_extension(kernel, x, 50, 10, seed=0)
        with pytest.raises(ConfigurationError):
            ext.truncated(0)
        with pytest.raises(ConfigurationError):
            ext.truncated(11)


class TestValidation:
    def test_rejects_ascending_eigvals(self, gauss_data):
        kernel, x = gauss_data
        with pytest.raises(ConfigurationError, match="descending"):
            NystromExtension(
                kernel=kernel,
                points=x[:5],
                eigvals=np.array([1.0, 2.0]),
                eigvecs=np.zeros((5, 2)),
            )

    def test_rejects_inconsistent_shapes(self, gauss_data):
        kernel, x = gauss_data
        with pytest.raises(ConfigurationError):
            NystromExtension(
                kernel=kernel,
                points=x[:5],
                eigvals=np.array([2.0, 1.0]),
                eigvecs=np.zeros((4, 2)),
            )

    def test_laplacian_extension_works(self, rng):
        x = rng.standard_normal((100, 4))
        ext = nystrom_extension(LaplacianKernel(bandwidth=2.0), x, 40, 6, seed=1)
        assert (ext.eigvals >= 0).all()
