"""Tests for power iteration and stability helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.linalg import jitter_cholesky, power_iteration, symmetrize


class TestPowerIteration:
    def test_finds_top_eigenvalue_with_spectral_gap(self, rng):
        """With a clear gap — the kernel-matrix regime this is used in —
        convergence is fast and accurate."""
        q, _ = np.linalg.qr(rng.standard_normal((30, 30)))
        vals = 5.0 * np.arange(1, 31, dtype=float) ** -2.0
        a = (q * vals) @ q.T
        top, vec, iters = power_iteration(a, seed=0)
        assert abs(top - 5.0) < 1e-6
        assert iters < 200
        resid = a @ vec - top * vec
        assert np.linalg.norm(resid) < 1e-4

    def test_small_gap_still_approximate(self, rng):
        """A nearly flat spectrum converges slowly; the estimate must
        still be within a few percent for m* purposes."""
        q, _ = np.linalg.qr(rng.standard_normal((30, 30)))
        vals = np.linspace(5.0, 0.1, 30)
        a = (q * vals) @ q.T
        top, _, _ = power_iteration(a, max_iter=500, tol=1e-14, seed=0)
        assert abs(top - 5.0) / 5.0 < 0.02

    def test_zero_matrix(self):
        top, _, _ = power_iteration(np.zeros((5, 5)))
        assert top == 0.0

    def test_identity(self):
        top, _, _ = power_iteration(np.eye(8), seed=3)
        assert abs(top - 1.0) < 1e-8

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            power_iteration(np.zeros((0, 0)))

    def test_deterministic_given_seed(self, rng):
        a = rng.standard_normal((10, 10))
        a = a @ a.T
        t1, _, _ = power_iteration(a, seed=9)
        t2, _, _ = power_iteration(a, seed=9)
        assert t1 == t2


class TestSymmetrize:
    def test_result_symmetric(self, rng):
        a = rng.standard_normal((6, 6))
        s = symmetrize(a)
        np.testing.assert_allclose(s, s.T)

    def test_symmetric_input_unchanged(self, rng):
        a = rng.standard_normal((5, 5))
        a = a + a.T
        np.testing.assert_allclose(symmetrize(a), a)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ConfigurationError):
            symmetrize(rng.standard_normal((3, 4)))


class TestJitterCholesky:
    def test_pd_matrix_no_jitter(self, rng):
        a = rng.standard_normal((10, 10))
        a = a @ a.T + 10 * np.eye(10)
        chol, jitter = jitter_cholesky(a)
        assert jitter == 0.0
        np.testing.assert_allclose(chol @ chol.T, a, atol=1e-8)

    def test_singular_matrix_gets_jitter(self):
        a = np.ones((6, 6))  # rank 1, singular
        chol, jitter = jitter_cholesky(a)
        assert jitter > 0
        np.testing.assert_allclose(
            chol @ chol.T, a + jitter * np.eye(6), atol=1e-8
        )

    def test_indefinite_matrix_eventually_fails(self):
        a = -np.eye(4)
        with pytest.raises(ConvergenceError):
            jitter_cholesky(a, initial_jitter=1e-12, max_tries=3)

    def test_kernel_matrix_with_duplicates(self, rng):
        from repro.kernels import GaussianKernel

        x = rng.standard_normal((20, 3))
        x[10:] = x[:10]  # exact duplicates make K singular
        k = GaussianKernel(bandwidth=1.0)(x, x)
        chol, jitter = jitter_cholesky(k)
        assert np.isfinite(chol).all()
