"""Tests for the observability layer (``repro.observe``).

Pins the contracts the rest of the stack relies on:

- tracing is strictly opt-in: with no active tracer, ``span`` records
  nothing and worker metered replies keep their pre-tracing 2-tuple
  shape (the conformance suite separately pins that RPC and op counts
  are unchanged);
- the tracer stack mirrors the meter stack: thread-local, nested,
  exit-out-of-order safe;
- worker-side spans relay across every available transport with
  per-shard attribution, riding the metered-reply path;
- the Perfetto export is schema-valid and round-trips the span data;
- the metrics registry unifies op counts, span durations and recovery
  events under one run-ID-stamped snapshot.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.instrument import OpMeter, meter_scope
from repro.kernels import GaussianKernel
from repro.observe import (
    MetricsRegistry,
    SpanEvent,
    Tracer,
    compare_phases,
    export_jsonl,
    export_perfetto,
    new_run_id,
    perfetto_payload,
    record_span,
    relay_spans,
    render_comparison,
    span,
    trace_scope,
    tracing_active,
    validate_perfetto,
)
from repro.shard import ShardedEigenPro2, registered_transports, transport_available
from repro.shard.transport.base import ShardWorker

transports = pytest.mark.parametrize(
    "transport",
    [
        pytest.param(
            t,
            marks=pytest.mark.skipif(
                not transport_available(t),
                reason=f"transport {t!r} is not available on this host",
            ),
        )
        for t in registered_transports()
    ],
)


class TestSpanAndScope:
    def test_span_records_on_active_tracer(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("form_block", step=3):
                pass
        (ev,) = tracer.events
        assert ev.name == "form_block"
        assert ev.attrs == {"step": 3}
        assert ev.duration_s >= 0.0
        assert ev.depth == 0

    def test_disabled_tracing_records_nothing(self):
        """The no-op pin: outside any trace_scope, spans cost one
        attribute check and record zero events anywhere."""
        tracer = Tracer()
        assert not tracing_active()
        with span("form_block"):
            with span("gemm"):
                pass
        record_span("recovery", 0.0, 1.0)
        relay_spans([{"name": "x", "start_s": 0.0, "duration_s": 1.0}])
        assert len(tracer) == 0
        assert not tracing_active()

    def test_nesting_depth_recorded(self):
        tracer = Tracer()
        with trace_scope(tracer):
            with span("epoch"):
                with span("form_block"):
                    with span("gemm"):
                        pass
        depths = {ev.name: ev.depth for ev in tracer.events}
        assert depths == {"epoch": 0, "form_block": 1, "gemm": 2}

    def test_nested_scopes_both_record(self):
        outer, inner = Tracer(), Tracer()
        with trace_scope(outer):
            with trace_scope(inner):
                with span("a"):
                    pass
            with span("b"):
                pass
        assert [ev.name for ev in inner.events] == ["a"]
        assert sorted(ev.name for ev in outer.events) == ["a", "b"]

    def test_exception_still_pops_scope(self):
        tracer = Tracer()
        try:
            with trace_scope(tracer):
                raise ValueError("boom")
        except ValueError:
            pass
        assert not tracing_active()
        with span("after"):
            pass
        assert len(tracer) == 0

    def test_stack_is_thread_local(self):
        """A tracer active on one thread never captures another
        thread's spans — relays are explicit."""
        tracer = Tracer()
        other_done = threading.Event()

        def other_thread():
            with span("other"):  # no tracer active *on this thread*
                pass
            other_done.set()

        with trace_scope(tracer):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert other_done.is_set()
        assert len(tracer) == 0

    def test_concurrent_spans_one_tracer(self):
        """Tracer.record is lock-guarded: many threads each tracing
        into their own scope over one shared tracer lose no events."""
        tracer = Tracer()
        n_threads, per_thread = 8, 25
        start = threading.Barrier(n_threads)

        def work(tid: int) -> None:
            start.wait()
            with trace_scope(tracer):
                for i in range(per_thread):
                    with span(f"t{tid}", i=i):
                        pass

        threads = [
            threading.Thread(target=work, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts = tracer.counts()
        assert counts == {
            f"t{tid}": per_thread for tid in range(n_threads)
        }

    def test_record_span_and_totals(self):
        tracer = Tracer()
        with trace_scope(tracer):
            record_span("recovery", 10.0, 0.25, old_g=2, new_g=1)
            record_span("recovery", 20.0, 0.75)
        assert tracer.totals()["recovery"] == pytest.approx(1.0)
        assert tracer.counts() == {"recovery": 2}

    def test_relay_spans_round_trip(self):
        tracer = Tracer()
        payload = SpanEvent(
            name="gemm", start_s=1.0, duration_s=0.5,
            thread="worker", depth=1, attrs={"shard": 3},
        ).as_dict()
        with trace_scope(tracer):
            relay_spans([payload])
        (ev,) = tracer.events
        assert ev == SpanEvent.from_dict(payload)
        assert ev.attrs["shard"] == 3


class TestWorkerReplyShapes:
    """The metered-reply contract: 2-tuple untraced (byte-identical to
    the pre-tracing protocol), 3-tuple with shard-stamped span payloads
    when tracing was requested at submit time."""

    @staticmethod
    def _worker():
        rng = np.random.default_rng(0)
        return ShardWorker(2, NumpyBackend(), rng.standard_normal((8, 3)))

    @staticmethod
    def _task(worker):
        with span("form_block", m=4):
            return float(np.sum(worker.centers))

    def test_untraced_reply_is_two_tuple(self):
        reply = self._worker().run_metered(self._task, (), {}, None)
        assert len(reply) == 2
        result, delta = reply
        assert isinstance(delta, dict)

    def test_traced_reply_appends_shard_stamped_spans(self):
        reply = self._worker().run_metered(
            self._task, (), {}, None, True
        )
        assert len(reply) == 3
        result, delta, spans = reply
        (payload,) = spans
        assert payload["name"] == "form_block"
        assert payload["attrs"] == {"m": 4, "shard": 2}

    def test_worker_trace_does_not_leak_to_caller_stack(self):
        self._worker().run_metered(self._task, (), {}, None, True)
        assert not tracing_active()


class TestTransportSpanRelayParity:
    """A traced sharded fit relays the same worker-side span names with
    full per-shard attribution on every available transport."""

    @staticmethod
    def _traced_fit(transport: str) -> Tracer:
        rng = np.random.default_rng(5)
        x = rng.standard_normal((160, 6))
        y = np.tanh(x @ rng.standard_normal((6, 2)))
        tracer = Tracer()
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.0),
            n_shards=2,
            transport=transport,
            s=24,
            batch_size=32,
            seed=0,
        )
        try:
            with trace_scope(tracer):
                trainer.fit(x, y, epochs=1)
        finally:
            trainer.close()
        return tracer

    @transports
    def test_worker_spans_cover_all_shards(self, transport):
        tracer = self._traced_fit(transport)
        for name in ("form_block", "gemm"):
            shards = {
                ev.attrs.get("shard")
                for ev in tracer.events
                if ev.name == name and "shard" in ev.attrs
            }
            assert shards == {0, 1}, (
                f"{transport}: worker span {name!r} missing shard "
                f"attribution: {shards}"
            )
        # Caller-side collective spans are present alongside.  Mirror
        # spans appear only where mirroring happens at all: thread-
        # transport NumPy shards adopt zero-copy weight views, so a
        # fit on them never mirrors (needs_mirror is False).
        counts = tracer.counts()
        expected = ["allreduce", "correction", "checkpoint"]
        if transport != "thread":
            expected.append("mirror")
        for name in expected:
            assert counts.get(name, 0) > 0, f"{transport}: no {name} spans"

    @transports
    def test_span_names_match_thread_reference(self, transport):
        if transport == "thread":
            pytest.skip("thread is the reference")
        got = set(self._traced_fit(transport).counts())
        ref = set(self._traced_fit("thread").counts())
        # Same phase vocabulary everywhere; a transport that actually
        # mirrors (view-less weights) adds exactly the mirror span the
        # thread reference's zero-copy views never need.
        assert ref <= got, f"{transport}: missing spans {ref - got}"
        assert got - ref <= {"mirror"}, (
            f"{transport}: unexpected spans {got - ref}"
        )


class TestExporters:
    @staticmethod
    def _tracer_with_spans() -> Tracer:
        tracer = Tracer()
        with trace_scope(tracer):
            with span("epoch", epoch=1):
                with span("allreduce", g=2):
                    pass
            relay_spans([
                SpanEvent(
                    name="form_block", start_s=2.0, duration_s=0.5,
                    thread="shard-0", attrs={"shard": 0},
                ).as_dict(),
                SpanEvent(
                    name="form_block", start_s=2.1, duration_s=0.4,
                    thread="shard-1", attrs={"shard": 1},
                ).as_dict(),
            ])
        return tracer

    def test_perfetto_schema_round_trip(self, tmp_path):
        tracer = self._tracer_with_spans()
        run_id = new_run_id()
        path = export_perfetto(
            tracer, tmp_path / "trace.json", run_id=run_id
        )
        payload = json.loads(path.read_text())
        validate_perfetto(payload)
        assert payload["otherData"]["run_id"]["id"] == run_id["id"]
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(tracer)
        # Worker spans land on per-shard process lanes; named lanes
        # exist for the trainer and both shards.
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"trainer", "shard 0", "shard 1"} <= names
        by_name = {}
        for e in complete:
            by_name.setdefault(e["name"], set()).add(e["pid"])
        assert by_name["form_block"] == {1, 2}
        assert by_name["allreduce"] == {0}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)

    def test_validate_perfetto_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_perfetto({})
        with pytest.raises(ValueError):
            validate_perfetto({"traceEvents": [{"name": "x", "ph": "X"}]})
        with pytest.raises(ValueError):
            validate_perfetto({"traceEvents": [
                {"name": "x", "ph": "Q", "pid": 0, "tid": 0}
            ]})

    def test_jsonl_read_back(self, tmp_path):
        tracer = self._tracer_with_spans()
        run_id = new_run_id()
        path = export_jsonl(
            tracer, tmp_path / "events.jsonl", run_id=run_id
        )
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        header, spans = lines[0], lines[1:]
        assert header["event"] == "run_start"
        assert header["spans"] == len(tracer) == len(spans)
        assert header["run_id"]["id"] == run_id["id"]
        replayed = Tracer()
        with trace_scope(replayed):
            relay_spans(spans)
        assert replayed.totals() == pytest.approx(tracer.totals())
        starts = [s["start_s"] for s in spans]
        assert starts == sorted(starts)

    def test_empty_tracer_exports(self, tmp_path):
        tracer = Tracer()
        payload = perfetto_payload(tracer)
        validate_perfetto(payload)
        path = export_jsonl(tracer, tmp_path / "empty.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["spans"] == 0


class TestMetricsRegistry:
    def test_snapshot_unifies_all_signals(self):
        run_id = new_run_id()
        registry = MetricsRegistry(run_id=run_id)
        meter = OpMeter()
        meter.record("gemm", 100)
        registry.ingest_op_counts(meter)
        tracer = Tracer()
        with trace_scope(tracer):
            record_span("allreduce", 0.0, 0.5, g=2)
            record_span("mirror", 1.0, 0.1, rows=4, queued=2)
        registry.ingest_tracer(tracer)

        class _Event:
            recovery_s = 0.25
            replayed_steps = 3
            old_g = 2
            new_g = 1

        registry.ingest_recovery_events([_Event()])
        snap = registry.snapshot()
        assert snap["run_id"] == dict(run_id)
        assert snap["counters"]["ops/gemm"] == 100
        assert snap["counters"]["span_count/allreduce"] == 1
        assert snap["counters"]["recovery/count"] == 1
        assert snap["counters"]["recovery/shards_lost"] == 1
        assert snap["histograms"]["span/allreduce_s"]["sum"] == (
            pytest.approx(0.5)
        )
        assert snap["histograms"]["mirror/queue_depth"]["max"] == 2
        assert snap["histograms"]["recovery/latency_s"]["count"] == 1

    def test_histogram_summary_stats(self):
        registry = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            registry.observe("h", v)
        h = registry.snapshot()["histograms"]["h"]
        assert h["count"] == 4
        assert h["min"] == 1.0 and h["max"] == 4.0
        assert h["mean"] == pytest.approx(2.5)
        assert h["p50"] == pytest.approx(2.5)
        assert h["p95"] == pytest.approx(3.85)

    def test_concurrent_increments(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 200
        start = threading.Barrier(n_threads)

        def work():
            start.wait()
            for _ in range(per_thread):
                registry.inc("hits")
                registry.observe("lat", 1.0)

        threads = [
            threading.Thread(target=work) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == n_threads * per_thread
        assert snap["histograms"]["lat"]["count"] == n_threads * per_thread


class TestComparePhases:
    def test_calibrated_report_renders(self):
        tracer = Tracer()
        with trace_scope(tracer):
            record_span("form_block", 0.0, 1.0)
            record_span("gemm", 1.0, 0.5)
            record_span("allreduce", 1.5, 0.1, g=2)
        report = compare_phases(
            tracer,
            g=2,
            link="thread",
            allreduce_payload_scalars=64.0,
            op_counts={"kernel_eval": 1_000, "gemm": 500},
        )
        phases = {p["phase"]: p for p in report["phases"]}
        # Rate calibrated from the run: 1500 ops / 1.5 s = 1000/s, so
        # modelled compute phases reproduce their measured times.
        assert report["calibration"]["calibrated_from_run"]
        assert report["calibration"]["scalar_rate"] == pytest.approx(1000.0)
        assert phases["form_block"]["modelled_s"] == pytest.approx(1.0)
        assert phases["gemm"]["modelled_s"] == pytest.approx(0.5)
        assert phases["allreduce"]["modelled_s"] is not None
        assert phases["mirror"]["modelled_s"] is None
        rendered = render_comparison(report)
        assert "form_block" in rendered and "TOTAL" in rendered


class TestPercentiles:
    """The percentile path production latency reporting reads."""

    def test_p99_in_snapshot(self):
        registry = MetricsRegistry()
        for v in range(1, 101):
            registry.observe("lat", float(v))
        h = registry.snapshot()["histograms"]["lat"]
        assert h["p99"] == pytest.approx(
            float(np.percentile(np.arange(1.0, 101.0), 99))
        )

    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0])
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 100])
    def test_percentile_matches_numpy(self, q, n):
        from repro.observe.metrics import _percentile

        rng = np.random.default_rng(n)
        values = sorted(rng.standard_normal(n).tolist())
        assert _percentile(values, q) == pytest.approx(
            float(np.percentile(np.asarray(values), 100 * q)), abs=1e-12
        )

    def test_percentile_empty_is_nan(self):
        from repro.observe.metrics import _percentile

        assert np.isnan(_percentile([], 0.5))

    def test_percentile_single_sample(self):
        from repro.observe.metrics import _percentile

        for q in (0.0, 0.5, 0.99, 1.0):
            assert _percentile([7.25], q) == 7.25

    @pytest.mark.parametrize("q", [-0.01, 1.01, 99.0])
    def test_percentile_rejects_out_of_range(self, q):
        from repro.observe.metrics import _percentile

        with pytest.raises(ValueError):
            _percentile([1.0, 2.0], q)

    def test_observe_many_equals_repeated_observe(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        values = [0.5, 0.1, 0.9, 0.3]
        for v in values:
            a.observe("h", v)
        b.observe_many("h", values)
        assert a.snapshot()["histograms"] == b.snapshot()["histograms"]


class TestSpanEntryAttribution:
    """Spans resolve their audience at *entry*: the tracers active when
    the span opened receive its event, however the stack has changed by
    the time it closes — the fix for cross-thread span leaks between
    concurrent callers sharing an engine."""

    def test_tracer_exited_before_span_close_still_records(self):
        from repro.observe.tracer import active_tracers

        tracer = Tracer()
        scope = trace_scope(tracer)
        scope.__enter__()
        s = span("work")
        s.__enter__()
        scope.__exit__(None, None, None)  # caller's scope gone mid-span
        s.__exit__(None, None, None)
        assert tracer.counts() == {"work": 1}

    def test_tracer_entered_mid_span_does_not_record(self):
        late = Tracer()
        s = span("work")
        s.__enter__()
        with trace_scope(late):
            s.__exit__(None, None, None)
        assert len(late) == 0

    def test_active_tracers_returns_copy(self):
        from repro.observe.tracer import active_tracers

        tracer = Tracer()
        with trace_scope(tracer):
            stack = active_tracers()
            stack.clear()  # mutating the copy must not detach the tracer
            with span("work"):
                pass
        assert tracer.counts() == {"work": 1}

    def test_concurrent_callers_get_exact_counts(self):
        """Thread-stress: each thread's tracer sees exactly its own
        spans even though all threads interleave on shared code."""
        n_threads, per_thread = 6, 50
        tracers = [Tracer() for _ in range(n_threads)]
        start = threading.Barrier(n_threads)

        def work(i: int) -> None:
            with trace_scope(tracers[i]):
                start.wait()
                for _ in range(per_thread):
                    with span("tick", who=i):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, tracer in enumerate(tracers):
            assert tracer.counts() == {"tick": per_thread}
            assert all(e.attrs["who"] == i for e in tracer.events)
