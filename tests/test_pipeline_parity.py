"""Parity suite for the pipelined (double-buffered) iteration engine.

The pipeline earns its keep only if it is *invisible* to the numbers:
with ``pipeline=True`` the single-device :class:`~repro.core.eigenpro2.
EigenPro2` and the sharded :class:`~repro.shard.ShardedEigenPro2` must
produce weights, histories, selections and aggregate op counts identical
to their serial runs — nothing stale is ever read, because the
prefetched block depends only on data the update never writes.  In
practice the agreement is *bitwise* (both schedules run the same
``_form_block`` / ``_consume_block`` code); the assertions below demand
exact equality for op counts/histories and ~1e-14 for weights.

Also covered: the :class:`~repro.kernels.ops.BlockWorkspace` double-buffer
contract (two rotating buffers per key, never more) and the
``debug_workspace`` assertion that pooled scratch cannot be silently
discarded.

Set ``REPRO_SHARD_G`` to restrict the shard counts exercised (same
convention as ``tests/test_shard_parity.py``).
"""

from __future__ import annotations

import importlib.util
import os

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.config import debug_workspace
from repro.core.eigenpro2 import EigenPro2
from repro.core.trainer import BlockPrefetcher
from repro.device.presets import titan_xp
from repro.exceptions import ConfigurationError
from repro.instrument import meter_scope
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.kernels.ops import BlockWorkspace, block_workspace
from repro.shard import ShardedEigenPro2

_ENV_G = os.environ.get("REPRO_SHARD_G")
G_VALUES = [int(_ENV_G)] if _ENV_G else [1, 2, 4]

shard_counts = pytest.mark.parametrize("g", G_VALUES)

KW = dict(s=80, batch_size=32, seed=0, damping=0.9)


def _fit(trainer, ds, epochs=2):
    trainer.fit(ds.x_train, ds.y_train, epochs=epochs)
    return trainer


class TestPipelinedEigenPro2:
    def _pair(self, ds, epochs=2, **extra):
        kernel = lambda: GaussianKernel(bandwidth=2.5)  # noqa: E731
        with meter_scope() as serial_meter:
            serial = _fit(
                EigenPro2(kernel(), device=titan_xp(), **KW, **extra),
                ds,
                epochs,
            )
        with meter_scope() as pipe_meter:
            pipelined = _fit(
                EigenPro2(
                    kernel(), device=titan_xp(), pipeline=True, **KW, **extra
                ),
                ds,
                epochs,
            )
        return serial, pipelined, serial_meter, pipe_meter

    def test_weights_match(self, small_dataset):
        serial, pipelined, _, _ = self._pair(small_dataset)
        scale = max(float(np.abs(np.asarray(serial._alpha)).max()), 1.0)
        np.testing.assert_allclose(
            np.asarray(pipelined._alpha),
            np.asarray(serial._alpha),
            atol=1e-14 * scale,
            rtol=0,
        )

    def test_histories_identical(self, small_dataset):
        serial, pipelined, _, _ = self._pair(small_dataset)
        assert pipelined.history_.series("train_mse") == serial.history_.series(
            "train_mse"
        )
        assert pipelined.history_.series(
            "device_time"
        ) == serial.history_.series("device_time")
        assert pipelined.history_.series(
            "iterations"
        ) == serial.history_.series("iterations")

    def test_op_counts_identical(self, small_dataset):
        _, _, serial_meter, pipe_meter = self._pair(small_dataset)
        assert serial_meter.as_dict() == pipe_meter.as_dict()

    def test_selection_identical(self, small_dataset):
        serial, pipelined, _, _ = self._pair(small_dataset)
        assert pipelined.params_ == serial.params_
        assert pipelined.step_size_ == serial.step_size_
        assert pipelined.batch_size_ == serial.batch_size_

    def test_max_iterations_respected(self, small_dataset):
        ds = small_dataset
        a = EigenPro2(GaussianKernel(bandwidth=2.5), device=titan_xp(), **KW)
        a.fit(ds.x_train, ds.y_train, epochs=5, max_iterations=7)
        b = EigenPro2(
            GaussianKernel(bandwidth=2.5),
            device=titan_xp(),
            pipeline=True,
            **KW,
        )
        b.fit(ds.x_train, ds.y_train, epochs=5, max_iterations=7)
        assert a.history_.final.iterations == 7
        assert b.history_.final.iterations == 7
        np.testing.assert_array_equal(
            np.asarray(b._alpha), np.asarray(a._alpha)
        )

    def test_laplacian_kernel(self, small_dataset):
        """A second profile (in-place sqrt) through the pipelined path."""
        ds = small_dataset
        a = _fit(
            EigenPro2(LaplacianKernel(bandwidth=4.0), device=titan_xp(), **KW),
            ds,
        )
        b = _fit(
            EigenPro2(
                LaplacianKernel(bandwidth=4.0),
                device=titan_xp(),
                pipeline=True,
                **KW,
            ),
            ds,
        )
        np.testing.assert_array_equal(
            np.asarray(b._alpha), np.asarray(a._alpha)
        )

    @pytest.mark.skipif(
        importlib.util.find_spec("torch") is None,
        reason="torch not installed — Torch backend unavailable",
    )
    def test_matches_under_torch(self, small_dataset):
        from repro.backend import use_backend

        ds = small_dataset
        with use_backend("torch"):
            serial = _fit(
                EigenPro2(
                    GaussianKernel(bandwidth=2.5), device=titan_xp(), **KW
                ),
                ds,
            )
            pipelined = _fit(
                EigenPro2(
                    GaussianKernel(bandwidth=2.5),
                    device=titan_xp(),
                    pipeline=True,
                    **KW,
                ),
                ds,
            )
        scale = max(float(np.abs(np.asarray(serial._alpha)).max()), 1.0)
        np.testing.assert_allclose(
            np.asarray(pipelined._alpha),
            np.asarray(serial._alpha),
            atol=1e-14 * scale,
            rtol=0,
        )


class TestPipelinedShardedEigenPro2:
    @shard_counts
    def test_weights_and_history_match_serial(self, small_dataset, g):
        ds = small_dataset
        with meter_scope() as serial_meter:
            serial = ShardedEigenPro2(
                GaussianKernel(bandwidth=2.5),
                n_shards=g,
                device=titan_xp(),
                pipeline=False,
                **KW,
            )
            _fit(serial, ds)
            serial.close()
        with meter_scope() as pipe_meter:
            pipelined = ShardedEigenPro2(
                GaussianKernel(bandwidth=2.5),
                n_shards=g,
                device=titan_xp(),
                pipeline=True,
                **KW,
            )
            _fit(pipelined, ds)
            pipelined.close()
        scale = max(float(np.abs(np.asarray(serial._alpha)).max()), 1.0)
        np.testing.assert_allclose(
            np.asarray(pipelined._alpha),
            np.asarray(serial._alpha),
            atol=1e-14 * scale,
            rtol=0,
        )
        assert pipelined.history_.series("train_mse") == serial.history_.series(
            "train_mse"
        )
        # Aggregate op counts — including the separately-metered
        # "allreduce" communication — are identical.
        assert serial_meter.as_dict() == pipe_meter.as_dict()

    @shard_counts
    def test_pipelined_matches_unsharded_serial(self, small_dataset, g):
        """The full cross-check: pipelined sharded vs serial unsharded."""
        ds = small_dataset
        ref = _fit(
            EigenPro2(GaussianKernel(bandwidth=2.5), device=titan_xp(), **KW),
            ds,
        )
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=g,
            device=titan_xp(),
            **KW,
        )
        try:
            _fit(trainer, ds)
            scale = max(float(np.abs(np.asarray(ref._alpha)).max()), 1.0)
            np.testing.assert_allclose(
                np.asarray(trainer._alpha),
                np.asarray(ref._alpha),
                atol=1e-6 * scale,
                rtol=0,
            )
        finally:
            trainer.close()

    def test_pipeline_default_on(self):
        trainer = ShardedEigenPro2(GaussianKernel(bandwidth=2.0), n_shards=2)
        assert trainer.pipeline is True
        serial = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.0), n_shards=2, pipeline=False
        )
        assert serial.pipeline is False

    @shard_counts
    def test_shard_workspace_caps_at_two_blocks(self, small_dataset, g):
        """Pipelined shards hold at most two (m, n_i) blocks of scratch."""
        ds = small_dataset
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=g,
            device=titan_xp(),
            pipeline=True,
            **KW,
        )
        try:
            trainer.fit(ds.x_train, ds.y_train, epochs=1)
            group = trainer.shard_group_
            m = trainer.batch_size_
            for ex in group.executors:
                assert 0 < ex.workspace_peak <= 2 * m * ex.n_centers
        finally:
            trainer.close()


class TestWorkspaceDoubleBuffer:
    @pytest.fixture(autouse=True)
    def fresh_workspace(self):
        block_workspace().reset()
        yield
        block_workspace().reset()

    def test_two_slots_two_buffers(self):
        """Alternating slots keeps exactly two resident blocks per key."""
        ws = BlockWorkspace()
        bk = NumpyBackend()
        a0 = ws.get(bk, 8, 16, np.float64, slot=0)
        a1 = ws.get(bk, 8, 16, np.float64, slot=1)
        assert ws.peak_scalars == 2 * 8 * 16
        a0[...] = 1.0
        a1[...] = 2.0
        # Re-requesting a slot recycles that slot's buffer and leaves the
        # other untouched — the double-buffer discipline.
        b0 = ws.get(bk, 8, 16, np.float64, slot=0)
        assert np.shares_memory(b0, a0)
        assert not np.shares_memory(b0, a1)
        assert float(a1.min()) == 2.0
        # Many more alternating requests never grow the pool.
        for t in range(10):
            ws.get(bk, 8, 16, np.float64, slot=t % 2)
        assert ws.peak_scalars == 2 * 8 * 16

    def test_default_slot_single_buffer(self):
        ws = BlockWorkspace()
        bk = NumpyBackend()
        for _ in range(5):
            ws.get(bk, 8, 16, np.float64)
        assert ws.peak_scalars == 8 * 16

    def test_pipelined_trainer_stays_double_buffered(self, small_dataset):
        """End to end: the core pipelined trainer's prefetch worker holds
        at most two batch blocks."""
        ds = small_dataset
        trainer = EigenPro2(
            GaussianKernel(bandwidth=2.5),
            device=titan_xp(),
            pipeline=True,
            **KW,
        )
        # Observe the worker's peak before fit() drains it: wrap close.
        peaks = []
        orig_close = BlockPrefetcher.close

        def probing_close(self):
            if self._pool is not None:
                peaks.append(
                    self._pool.submit(
                        lambda: block_workspace().peak_scalars
                    ).result()
                )
            orig_close(self)

        BlockPrefetcher.close = probing_close
        try:
            trainer.fit(ds.x_train, ds.y_train, epochs=1)
        finally:
            BlockPrefetcher.close = orig_close
        n = ds.x_train.shape[0]
        m = trainer.batch_size_
        assert peaks and 0 < peaks[0] <= 2 * m * n


class TestWorkspaceDebugFlag:
    def test_discarded_scratch_raises_under_debug(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3))
        kernel = GaussianKernel(bandwidth=1.0)
        bad = np.empty((2, 2))  # wrong shape
        with debug_workspace():
            with pytest.raises(ConfigurationError):
                kernel(x, x, out=bad)
        # With the flag off (forced — CI may export REPRO_DEBUG_WORKSPACE)
        # the historical fall-back-to-allocate holds.
        with debug_workspace(False):
            out = kernel(x, x, out=bad)
        assert out.shape == (4, 4)

    def test_wrong_dtype_raises_under_debug(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3))
        kernel = GaussianKernel(bandwidth=1.0)
        bad = np.empty((4, 4), dtype=np.float32)
        with debug_workspace():
            with pytest.raises(ConfigurationError):
                kernel(x, x, out=bad)

    def test_streaming_paths_clean_under_debug(self, small_dataset):
        """The hot paths request correctly-dtyped scratch up front, so the
        debug assertions never fire on them — serial, pipelined and
        sharded alike, including a dtype-pinned kernel."""
        from repro.kernels.ops import kernel_matrix, kernel_matvec

        ds = small_dataset
        rng = np.random.default_rng(1)
        w = rng.standard_normal(ds.x_train.shape[0])
        with debug_workspace():
            kernel_matvec(
                GaussianKernel(bandwidth=2.5), ds.x_test, ds.x_train, w
            )
            # float32-pinned kernel against float64 data: kernel_matrix
            # must route blocks through pooled eval-dtype scratch.
            pinned = GaussianKernel(bandwidth=2.5, dtype=np.float32)
            kernel_matrix(pinned, ds.x_test[:16], ds.x_train[:32])
            trainer = EigenPro2(
                GaussianKernel(bandwidth=2.5),
                device=titan_xp(),
                pipeline=True,
                **KW,
            )
            trainer.fit(ds.x_train, ds.y_train, epochs=1)
            sharded = ShardedEigenPro2(
                GaussianKernel(bandwidth=2.5),
                n_shards=2,
                device=titan_xp(),
                **KW,
            )
            try:
                sharded.fit(ds.x_train, ds.y_train, epochs=1)
            finally:
                sharded.close()
