"""Tests for the ASCII plotting module and the training CLI."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.plotting import AsciiChart, render_series


class TestAsciiChart:
    def test_renders_points(self):
        chart = AsciiChart(width=30, height=8, x_log=False, y_log=False)
        chart.add_series("a", [(0, 0), (1, 1), (2, 4)])
        text = chart.render(title="t")
        assert "t" in text
        assert "o" in text  # first marker
        assert "legend: o a" in text

    def test_multiple_series_distinct_markers(self):
        chart = AsciiChart(width=30, height=8, x_log=False, y_log=False)
        chart.add_series("one", [(0, 0), (1, 1)])
        chart.add_series("two", [(0, 1), (1, 0)])
        text = chart.render()
        assert "o one" in text and "x two" in text

    def test_log_axes_drop_nonpositive(self):
        chart = AsciiChart(x_log=True, y_log=True)
        chart.add_series("a", [(0.0, 1.0), (-1.0, 2.0), (1.0, 0.0)])
        assert chart.render() == "(no data to plot)"

    def test_nonfinite_dropped(self):
        chart = AsciiChart(x_log=False, y_log=False)
        chart.add_series("a", [(np.nan, 1.0), (1.0, np.inf), (1.0, 2.0)])
        text = chart.render()
        assert "legend" in text

    def test_empty_chart(self):
        assert AsciiChart().render() == "(no data to plot)"

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            AsciiChart(width=2, height=2)

    def test_render_series_from_experiment_shape(self):
        series = {
            "sgd": [
                {"batch_size": 1, "device_time_s": 60.0},
                {"batch_size": 64, "device_time_s": 5.5},
                {"batch_size": 1000, "device_time_s": 5.2},
            ],
            "eigenpro2": [
                {"batch_size": 1, "device_time_s": 63.0},
                {"batch_size": 64, "device_time_s": 0.5},
                {"batch_size": 1000, "device_time_s": 0.13},
            ],
        }
        text = render_series(
            series, "batch_size", "device_time_s", title="fig2"
        )
        assert "fig2" in text
        assert "sgd" in text and "eigenpro2" in text

    def test_single_point_series(self):
        chart = AsciiChart(x_log=False, y_log=False)
        chart.add_series("dot", [(1.0, 1.0)])
        assert "dot" in chart.render()


class TestTrainCLI:
    def test_end_to_end(self, capsys):
        from repro.train import main

        code = main(
            [
                "--dataset", "susy", "--n-train", "400", "--n-test", "100",
                "--kernel", "gaussian", "--bandwidth", "4.0",
                "--epochs", "2", "--seed", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "test error" in out
        assert "automatically selected parameters" in out

    def test_auto_bandwidth(self, capsys):
        from repro.train import main

        code = main(
            [
                "--dataset", "susy", "--n-train", "300", "--n-test", "80",
                "--kernel", "laplacian", "--auto-bandwidth",
                "--epochs", "1", "--seed", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cross-validated bandwidth" in out

    def test_multi_gpu_flag(self, capsys):
        from repro.train import main

        code = main(
            [
                "--dataset", "susy", "--n-train", "300", "--n-test", "80",
                "--kernel", "gaussian", "--bandwidth", "4.0",
                "--epochs", "1", "--gpus", "4", "--seed", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "titan-xp-x4" in out

    def test_unknown_dataset_fails(self):
        from repro.train import main

        with pytest.raises(KeyError):
            main(
                ["--dataset", "nope", "--kernel", "gaussian",
                 "--bandwidth", "1.0"]
            )


class TestNystromRidgeBaseline:
    def test_full_centers_matches_ridge(self, small_xy):
        from repro.baselines import NystromRidge, solve_ridge
        from repro.kernels import GaussianKernel

        x, y = small_xy
        k = GaussianKernel(bandwidth=2.0)
        nr = NystromRidge(
            k, n_centers=len(x), reg_lambda=1e-4, seed=0
        ).fit(x, y)
        exact = solve_ridge(k, x, y, reg_lambda=1e-4)
        np.testing.assert_allclose(
            nr.predict(x), exact.predict(x), atol=1e-6
        )

    def test_classification(self, medium_dataset):
        from repro.baselines import NystromRidge
        from repro.kernels import GaussianKernel

        ds = medium_dataset
        nr = NystromRidge(
            GaussianKernel(bandwidth=2.5), n_centers=200, reg_lambda=1e-6,
            seed=0,
        ).fit(ds.x_train, ds.y_train)
        assert nr.classification_error(ds.x_test, ds.labels_test) < 0.5

    def test_device_charged(self, small_xy):
        from repro.baselines import NystromRidge
        from repro.device import titan_xp
        from repro.kernels import GaussianKernel

        x, y = small_xy
        dev = titan_xp()
        NystromRidge(
            GaussianKernel(bandwidth=2.0), n_centers=20, device=dev, seed=0
        ).fit(x, y)
        assert dev.elapsed > 0

    def test_validation(self):
        from repro.baselines import NystromRidge
        from repro.kernels import GaussianKernel

        with pytest.raises(ConfigurationError):
            NystromRidge(GaussianKernel(bandwidth=1.0), n_centers=0)
        with pytest.raises(ConfigurationError):
            NystromRidge(GaussianKernel(bandwidth=1.0), reg_lambda=-1.0)

    def test_predict_before_fit(self, small_xy):
        from repro.baselines import NystromRidge
        from repro.exceptions import NotFittedError
        from repro.kernels import GaussianKernel

        x, _ = small_xy
        with pytest.raises(NotFittedError):
            NystromRidge(GaussianKernel(bandwidth=1.0)).predict(x)
