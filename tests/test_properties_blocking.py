"""Property tests for the memory-bounded blocking layer.

Blocked evaluation is what lets the same code scale from unit tests to
million-point configurations; its invariants — exact coverage, budget
respect, and result invariance under any block size — are quantified
here over random shapes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import GaussianKernel
from repro.kernels.ops import iter_row_blocks, kernel_matvec, row_block_sizes


@given(
    st.integers(0, 5000),
    st.integers(1, 2000),
    st.integers(1, 10**7),
)
@settings(max_examples=150, deadline=None)
def test_blocks_partition_rows_exactly(n_rows, n_cols, budget):
    sizes = row_block_sizes(n_rows, n_cols, max_scalars=budget)
    assert sum(sizes) == n_rows
    assert all(s >= 1 for s in sizes)


@given(
    st.integers(1, 5000),
    st.integers(1, 2000),
    st.integers(1, 10**7),
)
@settings(max_examples=150, deadline=None)
def test_blocks_respect_budget_or_single_row(n_rows, n_cols, budget):
    for s in row_block_sizes(n_rows, n_cols, max_scalars=budget):
        assert s * n_cols <= budget or s == 1


@given(
    st.integers(1, 300),
    st.integers(1, 100),
    st.integers(1, 10**6),
)
@settings(max_examples=100, deadline=None)
def test_slices_contiguous_and_ordered(n_rows, n_cols, budget):
    slices = list(iter_row_blocks(n_rows, n_cols, max_scalars=budget))
    assert slices[0].start == 0
    assert slices[-1].stop == n_rows
    for a, b in zip(slices, slices[1:]):
        assert a.stop == b.start


@given(
    st.integers(2, 40),
    st.integers(1, 25),
    st.integers(1, 4),
    st.integers(1, 500),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_matvec_invariant_under_block_size(n_x, n_c, l, budget, seed):
    """The result of K(X,C) @ W must not depend on the block budget."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_x, 3))
    c = rng.standard_normal((n_c, 3))
    w = rng.standard_normal((n_c, l))
    k = GaussianKernel(bandwidth=1.5)
    full = kernel_matvec(k, x, c, w, max_scalars=10**9)
    blocked = kernel_matvec(k, x, c, w, max_scalars=budget)
    np.testing.assert_allclose(blocked, full, atol=1e-10)
