"""Cross-cutting property-based tests (hypothesis) on system invariants.

These quantify over random *parameters* — spectra, device shapes, batch
sizes — rather than random data, checking the algebraic invariants that
DESIGN.md section 5 lists.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.convergence import convergence_rate_bound, per_iteration_gain
from repro.core.cost import (
    improved_eigenpro_cost,
    original_eigenpro_cost,
    sgd_cost,
)
from repro.core.resource import max_device_batch_size
from repro.core.stepsize import analytic_step_size
from repro.device import DeviceSpec
from repro.device.cluster import Interconnect, allreduce_time, multi_gpu

dims = st.integers(1, 10_000)
small_dims = st.integers(1, 500)
pos_floats = st.floats(1e-6, 1e6, allow_nan=False, allow_infinity=False)


# ------------------------------------------------------------- cost model
@given(dims, small_dims, small_dims, small_dims, small_dims, small_dims)
@settings(max_examples=80, deadline=None)
def test_improved_never_costs_more_than_original(n, m, d, l, s, q):
    assume(s <= n)
    imp = improved_eigenpro_cost(n, m, d, l, s, q)
    orig = original_eigenpro_cost(n, m, d, l, q)
    assert imp.computation <= orig.computation
    assert imp.memory <= orig.memory


@given(dims, small_dims, small_dims, small_dims, small_dims, small_dims)
@settings(max_examples=80, deadline=None)
def test_overheads_are_additive_over_sgd(n, m, d, l, s, q):
    base = sgd_cost(n, m, d, l)
    imp = improved_eigenpro_cost(n, m, d, l, s, q)
    assert imp.computation == base.computation + imp.overhead_computation
    assert imp.memory == base.memory + imp.overhead_memory


@given(dims, small_dims, small_dims, small_dims)
@settings(max_examples=80, deadline=None)
def test_sgd_cost_monotone_in_every_dim(n, m, d, l):
    base = sgd_cost(n, m, d, l).computation
    assert sgd_cost(n + 1, m, d, l).computation >= base
    assert sgd_cost(n, m + 1, d, l).computation >= base
    assert sgd_cost(n, m, d + 1, l).computation >= base
    assert sgd_cost(n, m, d, l + 1).computation >= base


# ---------------------------------------------------------------- devices
device_specs = st.builds(
    DeviceSpec,
    name=st.just("prop"),
    parallel_capacity=st.floats(0, 1e14, allow_nan=False),
    throughput=st.floats(1e6, 1e14, allow_nan=False),
    memory_scalars=st.floats(1e6, 1e12, allow_nan=False),
    launch_overhead_s=st.floats(0, 1e-2, allow_nan=False),
)


@given(device_specs, st.floats(0, 1e16, allow_nan=False), st.floats(0, 1e16, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_iteration_time_monotone_in_ops(spec, ops_a, ops_b):
    lo, hi = sorted((ops_a, ops_b))
    assert spec.iteration_time(lo) <= spec.iteration_time(hi) + 1e-15


@given(device_specs, st.floats(1, 1e12, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_iteration_time_positive_and_finite(spec, ops):
    t = spec.iteration_time(ops)
    assert t >= 0 and math.isfinite(t)


@given(
    device_specs,
    st.integers(100, 10_000),
    st.integers(1, 300),
    st.integers(1, 50),
)
@settings(max_examples=80, deadline=None)
def test_m_max_is_min_and_within_n(spec, n, d, l):
    try:
        res = max_device_batch_size(spec, n, d, l)
    except Exception:
        assume(False)  # device too small for this workload: skip
    assert 1 <= res.m_max <= n
    assert res.m_max <= max(res.m_compute, 1)
    assert res.m_max <= max(res.m_memory, 1)


@given(
    st.integers(1, 64),
    st.floats(0, 1e-2, allow_nan=False),
    st.floats(1e6, 1e12, allow_nan=False),
    st.floats(0, 1e8, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_allreduce_monotone_in_devices(g, lat, bw, payload):
    net = Interconnect(latency_s=lat, bandwidth_scalars_per_s=bw)
    assert allreduce_time(net, g, payload) <= allreduce_time(
        net, g + 1, payload
    ) + 1e-12


@given(st.integers(1, 32))
@settings(max_examples=32, deadline=None)
def test_cluster_aggregates_linearly(g):
    from repro.device.presets import titan_xp

    base = titan_xp().spec
    agg = multi_gpu(base, g).spec
    assert agg.parallel_capacity == pytest.approx(g * base.parallel_capacity)
    assert agg.memory_scalars == pytest.approx(g * base.memory_scalars)


# -------------------------------------------------------------- step size
# Physical constraint: for a kernel operator, lambda_1 <= beta (the top
# eigenvalue cannot exceed max_i k(x_i,x_i)); the step-size properties
# below hold exactly in that regime.
@given(st.integers(1, 10**6), pos_floats, st.floats(0, 1.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_step_size_bounded_by_saturation(m, beta, lam_ratio):
    lam = beta * lam_ratio
    eta = analytic_step_size(m, beta, lam)
    assert 0 < eta <= m / beta + 1e-9
    if lam > 0:
        assert eta <= 1 / lam * (1 + 1e-9)


@given(
    st.integers(1, 10**5), pos_floats, st.floats(0, 1.0, allow_nan=False)
)
@settings(max_examples=100, deadline=None)
def test_step_size_monotone_in_m(m, beta, lam_ratio):
    lam = beta * lam_ratio
    assert analytic_step_size(m + 1, beta, lam) >= analytic_step_size(
        m, beta, lam
    ) * (1 - 1e-12)


# ------------------------------------------------------------ convergence
spectra = st.tuples(
    st.floats(1e-3, 1.0),  # beta scale anchor
    st.floats(1e-6, 1.0),  # lambda_1 / beta
    st.floats(1e-9, 1.0),  # lambda_n / lambda_1
)


@given(spectra, st.integers(1, 10**6))
@settings(max_examples=100, deadline=None)
def test_rate_bound_contracts(spec, m):
    beta, r1, rn = spec
    lam1 = beta * r1
    lamn = lam1 * rn
    g = convergence_rate_bound(m, beta, lam1, lamn)
    assert 0.0 <= g < 1.0


@given(spectra, st.integers(1, 10**5))
@settings(max_examples=100, deadline=None)
def test_gain_monotone_in_m(spec, m):
    beta, r1, rn = spec
    lam1 = beta * r1
    lamn = lam1 * rn
    assert per_iteration_gain(m + 1, beta, lam1, lamn) >= per_iteration_gain(
        m, beta, lam1, lamn
    ) - 1e-15


@given(spectra, st.integers(2, 10**5), st.floats(0.01, 0.99))
@settings(max_examples=100, deadline=None)
def test_flattening_always_helps(spec, m, flatten):
    """Any lambda_q < lambda_1 gives at least the original gain."""
    beta, r1, rn = spec
    lam1 = beta * r1
    lamn = lam1 * rn
    lam_q = max(lam1 * flatten, lamn)
    assert per_iteration_gain(m, beta, lam_q, lamn) >= per_iteration_gain(
        m, beta, lam1, lamn
    ) - 1e-12


# -------------------------------------------------------- preconditioner
@given(st.integers(2, 25), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_modified_kernel_psd_random_data(q, seed):
    from repro.core.preconditioner import NystromPreconditioner
    from repro.kernels import GaussianKernel
    from repro.linalg import nystrom_extension

    rng = np.random.default_rng(seed)
    x = rng.standard_normal((60, 4))
    ext = nystrom_extension(
        GaussianKernel(bandwidth=2.0), x, 60, 26, indices=np.arange(60)
    )
    p = NystromPreconditioner(ext, q)
    kg = p.modified_kernel(x, x)
    eigs = np.linalg.eigvalsh((kg + kg.T) / 2)
    assert eigs.min() > -1e-8 * max(eigs.max(), 1e-12)
