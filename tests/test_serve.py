"""Serving-engine correctness suite (:mod:`repro.serve`).

The load-bearing contract is **bitwise parity**: any response produced
by the micro-batched :class:`~repro.serve.ModelServer` — however the
dispatcher happened to coalesce it — carries exactly the bits a solo
:func:`~repro.shard.sharded_predict` call on the same group would
produce.  The suite pins that across transports and shard counts, then
covers the service-hardening surface: drain-on-close semantics,
backpressure, bounded retries, option validation, per-request span
relay, run-ID-stamped latency histograms, and the exporter registry.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.model import KernelModel
from repro.exceptions import ConfigurationError, ShardError
from repro.kernels import GaussianKernel
from repro.observe import MetricsRegistry, Tracer, trace_scope
from repro.serve import (
    SNAPSHOT_EXPORTERS,
    ModelServer,
    ServeOptions,
    register_exporter,
)
from repro.shard import ShardGroup, process_transport_available, sharded_predict

N, D, L = 193, 5, 3


def _transport_param(name: str):
    marks = []
    if name == "process" and not process_transport_available():
        marks.append(pytest.mark.skip(reason="no fork-safe shared memory"))
    return pytest.param(name, marks=marks)


transports = pytest.mark.parametrize(
    "transport", [_transport_param("thread"), _transport_param("process")]
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(7)
    centers = rng.standard_normal((N, D))
    weights = rng.standard_normal((N, L))
    kernel = GaussianKernel(bandwidth=2.0)
    x = rng.standard_normal((37, D))
    return kernel, centers, weights, x


def _build_group(problem, transport: str, g: int) -> ShardGroup:
    kernel, centers, weights, _ = problem
    return ShardGroup.build(
        centers, weights, g=g, kernel=kernel, transport=transport
    )


# --------------------------------------------------------------------------
# Bitwise contract
# --------------------------------------------------------------------------


@pytest.mark.parametrize("g", [1, 2])
@transports
def test_batched_bitwise_vs_solo_loop(problem, transport, g):
    """Concurrent batched responses == the per-request solo loop, bit
    for bit, on thread and process transports alike."""
    kernel, centers, weights, _ = problem
    rng = np.random.default_rng(11)
    requests = [rng.standard_normal((r, D)) for r in (1, 4, 1, 9, 2, 1, 6, 3)]
    with _build_group(problem, transport, g) as group:
        expected = [np.asarray(sharded_predict(group, x)) for x in requests]
        # A window plus a full-cohort budget forces real coalescing: the
        # tick must carry several requests for the parity claim to mean
        # anything (asserted below via the batch-size histogram).
        server = ModelServer(
            group=group,
            options=ServeOptions(
                max_batch_requests=len(requests), batch_wait_s=0.05
            ),
        )
        try:
            futures = [server.submit(x) for x in requests]
            results = [f.result(timeout=60) for f in futures]
        finally:
            server.close()
        max_batch = server.stats()["histograms"]["serve/batch_requests"]["max"]
    for got, want in zip(results, expected):
        assert got.shape == want.shape
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)
    assert max_batch >= 2, "dispatcher never coalesced; parity test is vacuous"


@transports
def test_drain_on_close_resolves_burst(problem, transport):
    """close() with the default drain serves every queued request."""
    rng = np.random.default_rng(3)
    requests = [rng.standard_normal((2, D)) for _ in range(16)]
    with _build_group(problem, transport, 2) as group:
        expected = [np.asarray(sharded_predict(group, x)) for x in requests]
        server = ModelServer(group=group)
        futures = [server.submit(x) for x in requests]
        server.close()
        assert server.closed
        for f, want in zip(futures, expected):
            np.testing.assert_array_equal(f.result(timeout=0), want)
        # Borrowed group survives the server.
        assert not group.closed
        sharded_predict(group, requests[0])


def test_close_without_drain_fails_queued(problem):
    """close(drain=False) fails still-queued futures with ShardError and
    leaves the in-flight tick to complete."""
    with _build_group(problem, "thread", 2) as group:
        entered, release = threading.Event(), threading.Event()
        real_async = group.map_allreduce_async

        def blocking_async(*args, **kwargs):
            entered.set()
            release.wait(timeout=30)
            return real_async(*args, **kwargs)

        group.map_allreduce_async = blocking_async
        try:
            server = ModelServer(
                group=group,
                options=ServeOptions(
                    max_batch_requests=1, pipeline_depth=1, batch_wait_s=0.0
                ),
            )
            inflight = server.submit(np.zeros((1, D)))
            assert entered.wait(timeout=10)
            queued = [server.submit(np.zeros((1, D))) for _ in range(3)]
            threading.Timer(0.2, release.set).start()
            server.close(drain=False)
            for f in queued:
                with pytest.raises(ShardError, match="closed"):
                    f.result(timeout=0)
            assert inflight.result(timeout=10).shape == (1, L)
        finally:
            group.map_allreduce_async = real_async
            release.set()


# --------------------------------------------------------------------------
# Shape contract
# --------------------------------------------------------------------------


@transports
def test_zero_row_request(problem, transport):
    """A (0, d) request resolves to a well-formed (0, l) result."""
    with _build_group(problem, transport, 2) as group:
        with ModelServer(group=group) as server:
            out = server.predict(np.empty((0, D)), timeout=60)
    assert out.shape == (0, L)
    assert out.dtype == np.float64


def test_single_sample_squeeze(problem):
    """(d,) input resolves to its (l,) result row."""
    kernel, centers, weights, x = problem
    with _build_group(problem, "thread", 2) as group:
        want = np.asarray(sharded_predict(group, x[:1]))[0]
        with ModelServer(group=group) as server:
            got = server.predict(x[0], timeout=60)
    assert got.shape == (L,)
    np.testing.assert_array_equal(got, want)


def test_mixed_zero_row_in_batch(problem):
    """Zero-row requests coalesced with real ones stay well-formed."""
    rng = np.random.default_rng(5)
    with _build_group(problem, "thread", 2) as group:
        xs = [rng.standard_normal((3, D)), np.empty((0, D)),
              rng.standard_normal((2, D))]
        expected = [np.asarray(sharded_predict(group, x)) for x in xs]
        server = ModelServer(
            group=group,
            options=ServeOptions(max_batch_requests=3, batch_wait_s=0.05),
        )
        try:
            futures = [server.submit(x) for x in xs]
            for f, want in zip(futures, expected):
                np.testing.assert_array_equal(f.result(timeout=60), want)
        finally:
            server.close()


# --------------------------------------------------------------------------
# Options and constructor validation
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch_requests": 0},
        {"max_batch_rows": 0},
        {"max_queue": 0},
        {"max_scalars": 0},
        {"pipeline_depth": 0},
        {"max_retries": -1},
        {"retry_backoff_s": -0.1},
        {"batch_wait_s": -1e-3},
        {"drain_timeout_s": 0.0},
    ],
)
def test_options_validation(kwargs):
    with pytest.raises(ConfigurationError):
        ServeOptions(**kwargs)


def test_constructor_validation(problem):
    kernel, centers, weights, _ = problem
    model = KernelModel(kernel=kernel, centers=centers, weights=weights)
    with _build_group(problem, "thread", 1) as group:
        with pytest.raises(ConfigurationError, match="exactly one"):
            ModelServer(model, group=group)
        with pytest.raises(ConfigurationError, match="exactly one"):
            ModelServer()
        with pytest.raises(ConfigurationError, match="ServeOptions"):
            ModelServer(group=group, options={"max_batch_requests": 4})
    # group is now closed by the context manager:
    with pytest.raises(ConfigurationError, match="closed"):
        ModelServer(group=group)
    kernelless = ShardGroup.build(centers, weights, g=1, transport="thread")
    try:
        with pytest.raises(ConfigurationError, match="kernel"):
            ModelServer(group=kernelless)
    finally:
        kernelless.close()


def test_request_validation(problem):
    with _build_group(problem, "thread", 1) as group:
        with ModelServer(group=group) as server:
            with pytest.raises(ConfigurationError, match="features"):
                server.submit(np.zeros((2, D + 1)))
            with pytest.raises(ConfigurationError, match=r"\(b, d\)"):
                server.submit(np.zeros((2, 2, D)))


# --------------------------------------------------------------------------
# Lifecycle
# --------------------------------------------------------------------------


def test_submit_after_close_raises_and_close_is_idempotent(problem):
    with _build_group(problem, "thread", 1) as group:
        server = ModelServer(group=group)
        server.close()
        server.close()  # idempotent
        assert server.closed
        with pytest.raises(ShardError, match="closed"):
            server.submit(np.zeros((1, D)))


def test_owned_group_closes_with_server(problem):
    kernel, centers, weights, x = problem
    model = KernelModel(kernel=kernel, centers=centers, weights=weights)
    server = ModelServer(model, g=2, transport="thread")
    want = np.asarray(sharded_predict(server.group, x))
    got = server.predict(x, timeout=60)
    np.testing.assert_array_equal(got, want)
    server.close()
    assert server.group.closed


def test_group_serve_borrows(problem):
    """ShardGroup.serve() hands back a borrowing ModelServer."""
    _, _, _, x = problem
    with _build_group(problem, "thread", 2) as group:
        with group.serve(options=ServeOptions(pipeline_depth=1)) as server:
            assert isinstance(server, ModelServer)
            np.testing.assert_array_equal(
                server.predict(x, timeout=60),
                np.asarray(sharded_predict(group, x)),
            )
        assert not group.closed


def test_backpressure_queue_full(problem):
    """Submissions past max_queue raise instead of queueing unboundedly."""
    with _build_group(problem, "thread", 1) as group:
        entered, release = threading.Event(), threading.Event()
        real_async = group.map_allreduce_async

        def blocking_async(*args, **kwargs):
            entered.set()
            release.wait(timeout=30)
            return real_async(*args, **kwargs)

        group.map_allreduce_async = blocking_async
        try:
            server = ModelServer(
                group=group,
                options=ServeOptions(
                    max_batch_requests=1, pipeline_depth=1, max_queue=2
                ),
            )
            first = server.submit(np.zeros((1, D)))
            assert entered.wait(timeout=10)
            queued = [server.submit(np.zeros((1, D))) for _ in range(2)]
            with pytest.raises(ShardError, match="full"):
                server.submit(np.zeros((1, D)))
            release.set()
            for f in [first, *queued]:
                assert f.result(timeout=30).shape == (1, L)
            server.close()
        finally:
            group.map_allreduce_async = real_async
            release.set()


# --------------------------------------------------------------------------
# Failure policy
# --------------------------------------------------------------------------


class _FailingPending:
    def result(self):
        raise ShardError("injected async tick failure")


def test_retry_recovers_and_is_metered(problem):
    """A failed async tick is retried synchronously; the response still
    carries solo bits and serve/retries records the attempt."""
    _, _, _, x = problem
    with _build_group(problem, "thread", 1) as group:
        want = np.asarray(sharded_predict(group, x))
        real_async = group.map_allreduce_async
        fail_once = {"armed": True}

        def flaky_async(*args, **kwargs):
            if fail_once["armed"]:
                fail_once["armed"] = False
                return _FailingPending()
            return real_async(*args, **kwargs)

        group.map_allreduce_async = flaky_async
        try:
            server = ModelServer(
                group=group,
                options=ServeOptions(max_retries=1, retry_backoff_s=0.0),
            )
            got = server.predict(x, timeout=60)
            server.close()
        finally:
            group.map_allreduce_async = real_async
        np.testing.assert_array_equal(got, want)
        counters = server.stats()["counters"]
        assert counters.get("serve/retries", 0) >= 1
        assert counters.get("serve/failed_requests", 0) == 0


def test_exhausted_retries_fail_futures(problem):
    """When every attempt dies, the batch's futures carry the error and
    serve/failed_requests counts them — the server stays usable."""
    _, _, _, x = problem
    with _build_group(problem, "thread", 1) as group:
        real_async = group.map_allreduce_async
        real_sync = group.map_allreduce
        group.map_allreduce_async = lambda *a, **k: _FailingPending()

        def failing_sync(*args, **kwargs):
            raise ShardError("injected sync tick failure")

        group.map_allreduce = failing_sync
        try:
            server = ModelServer(
                group=group,
                options=ServeOptions(max_retries=1, retry_backoff_s=0.0),
            )
            fut = server.submit(x)
            with pytest.raises(ShardError):
                fut.result(timeout=60)
            assert (
                server.stats()["counters"].get("serve/failed_requests", 0) == 1
            )
        finally:
            group.map_allreduce_async = real_async
            group.map_allreduce = real_sync
        # Engine recovers once the fault clears.
        got = server.predict(x, timeout=60)
        server.close()
        np.testing.assert_array_equal(
            got, np.asarray(sharded_predict(group, x))
        )


# --------------------------------------------------------------------------
# Observability
# --------------------------------------------------------------------------


def test_latency_histograms_and_run_id(problem):
    _, _, _, x = problem
    registry = MetricsRegistry(run_id={"id": "serve-test-run"})
    with _build_group(problem, "thread", 2) as group:
        with ModelServer(group=group, metrics=registry) as server:
            for _ in range(12):
                server.predict(x[:2], timeout=60)
            snapshot = server.stats()
    assert snapshot["run_id"]["id"] == "serve-test-run"
    for name in ("serve/queue_s", "serve/request_s"):
        hist = snapshot["histograms"][name]
        assert hist["count"] == 12
        for q in ("p50", "p95", "p99"):
            assert np.isfinite(hist[q])
    assert snapshot["histograms"]["serve/request_s"]["p50"] >= 0.0
    assert snapshot["counters"]["serve/requests"] == 12


def test_span_relay_is_per_caller(problem):
    """Each caller's tracer receives exactly its own request's serving
    spans — a concurrent caller's spans never leak in."""
    _, _, _, x = problem
    with _build_group(problem, "thread", 2) as group:
        server = ModelServer(
            group=group,
            options=ServeOptions(max_batch_requests=4, batch_wait_s=0.05),
        )
        tracers = [Tracer(), Tracer()]
        barrier = threading.Barrier(3)

        def traced_client(tracer: Tracer) -> None:
            with trace_scope(tracer):
                barrier.wait(timeout=10)
                server.predict(x[:3], timeout=60)

        def untraced_client() -> None:
            barrier.wait(timeout=10)
            server.predict(x[:2], timeout=60)

        threads = [
            threading.Thread(target=traced_client, args=(tracers[0],)),
            threading.Thread(target=traced_client, args=(tracers[1],)),
            threading.Thread(target=untraced_client),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.close()
    for tracer in tracers:
        counts = tracer.counts()
        for name in ("serve/queue", "serve/batch", "serve/kernel",
                     "serve/scatter"):
            assert counts.get(name, 0) == 1, (name, counts)


def test_exporter_registry(problem, tmp_path):
    _, _, _, x = problem
    with _build_group(problem, "thread", 1) as group:
        with ModelServer(group=group) as server:
            server.predict(x[:1], timeout=60)
            out = tmp_path / "snapshot.json"
            server.export(out)
            with pytest.raises(ConfigurationError, match="unknown exporter"):
                server.export(tmp_path / "x.bin", fmt="no-such-format")
            captured = {}

            @register_exporter("test-capture")
            def _capture(snapshot, path):
                captured["snapshot"] = snapshot

            try:
                server.export("ignored", fmt="test-capture")
            finally:
                SNAPSHOT_EXPORTERS.pop("test-capture", None)
    import json

    payload = json.loads(out.read_text())
    assert payload["counters"]["serve/requests"] == 1
    assert captured["snapshot"]["counters"]["serve/requests"] == 1


# --------------------------------------------------------------------------
# serve-report experiment
# --------------------------------------------------------------------------


def test_serve_report_experiment_smoke():
    from repro.experiments.serve_report import (
        ServeReportConfig,
        run_serve_report,
    )

    result = run_serve_report(
        ServeReportConfig(
            n=199, d=4, l=2, g=2, transport="thread",
            n_clients=3, requests_per_client=2, rows_per_request=3,
        )
    )
    claims = {c.claim_id: c for c in result.claims}
    assert set(claims) >= {"serve/batched-bitwise", "serve/drain-on-close"}
    for claim in result.claims:
        assert claim.holds, claim.claim_id
