"""HTTP transport suite (:mod:`repro.serve.http` / :mod:`.client`).

The load-bearing claim is that HTTP adds a *transport*, not a numeric
path: ``POST /predict`` responses are bit-identical to in-process
:meth:`~repro.serve.ModelServer.predict` — and therefore to a solo
:func:`~repro.shard.sharded_predict` — because JSON round-trips float64
losslessly.  Around that: the health/metrics endpoints, the error
mapping (400 malformed / 503 backpressure / 504 shed), the per-request
timings on the wire, and the :class:`~repro.serve.ServeClient`
interface both transports implement.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceeded,
    ShardError,
)
from repro.kernels import GaussianKernel
from repro.serve import (
    HttpClient,
    LocalClient,
    ModelServer,
    PredictRequest,
    PredictResponse,
    ServeClient,
    ServeHTTPServer,
    ServeOptions,
)
from repro.shard import ShardGroup, sharded_predict

N, D, L = 151, 4, 3


@pytest.fixture(scope="module")
def served():
    """One engine + HTTP adapter shared by the module (per-test servers
    would pay a socket bind per test for no isolation gain: requests are
    independent and the suite never closes the shared pair)."""
    rng = np.random.default_rng(29)
    centers = rng.standard_normal((N, D))
    weights = rng.standard_normal((N, L))
    kernel = GaussianKernel(bandwidth=2.0)
    with ShardGroup.build(
        centers, weights, g=2, kernel=kernel, transport="thread"
    ) as group:
        with ModelServer(group=group) as server:
            with ServeHTTPServer(server) as http_srv:
                yield group, server, http_srv


def _post(url: str, payload: dict, timeout: float = 30.0):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# --------------------------------------------------------------------------
# Bitwise round trip
# --------------------------------------------------------------------------


def test_http_predict_bitwise_vs_in_process(served):
    group, server, http_srv = served
    rng = np.random.default_rng(31)
    for rows in (1, 7, 23):
        x = rng.standard_normal((rows, D))
        want = np.asarray(sharded_predict(group, x))
        np.testing.assert_array_equal(server.predict(x, timeout=60), want)
        status, payload = _post(
            f"{http_srv.url}/predict", {"rows": x.tolist()}
        )
        assert status == 200
        got = np.asarray(payload["values"], dtype=np.float64)
        assert got.shape == want.shape and got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)


def test_http_client_predict_bitwise(served):
    group, _, http_srv = served
    rng = np.random.default_rng(37)
    x = rng.standard_normal((9, D))
    client = HttpClient(http_srv.url)
    np.testing.assert_array_equal(
        client.predict(x), np.asarray(sharded_predict(group, x))
    )


def test_single_sample_round_trip(served):
    group, server, http_srv = served
    x = np.random.default_rng(41).standard_normal(D)
    resp = HttpClient(http_srv.url).predict_request(PredictRequest(rows=x))
    want = server.predict(x, timeout=60)  # engine's (l,) single-sample form
    assert resp.values.shape == want.shape == (L,)
    np.testing.assert_array_equal(resp.values, want)
    np.testing.assert_array_equal(
        resp.values, np.asarray(sharded_predict(group, x)).reshape(-1)
    )


def test_response_carries_timings_and_identity(served):
    _, server, http_srv = served
    x = np.zeros((2, D))
    req = PredictRequest(rows=x, request_id="r-timed", tags={"arm": "a"})
    resp = HttpClient(http_srv.url).predict_request(req)
    assert isinstance(resp, PredictResponse)
    assert resp.request_id == "r-timed"
    assert resp.run_id == server.run_id
    assert resp.queue_s >= 0.0 and resp.batch_s > 0.0
    assert resp.shed is False and resp.retries == 0


# --------------------------------------------------------------------------
# Health and metrics endpoints
# --------------------------------------------------------------------------


def test_healthz(served):
    _, server, http_srv = served
    with urllib.request.urlopen(f"{http_srv.url}/healthz", timeout=30) as r:
        payload = json.loads(r.read())
        assert r.status == 200
    assert payload["status"] == "ok"
    assert payload["run_id"] == server.run_id
    assert payload["transport"] == "thread" and payload["g"] == 2


def test_metrics_snapshot(served):
    _, server, http_srv = served
    server.predict(np.zeros((1, D)), timeout=60)  # at least one sample
    with urllib.request.urlopen(f"{http_srv.url}/metrics", timeout=30) as r:
        snap = json.loads(r.read())
    assert snap["run_id"]["id"] == server.run_id
    assert "serve/request_s" in snap["histograms"]
    assert snap["counters"]["serve/http_requests"] >= 1


def test_unknown_routes_404(served):
    _, _, http_srv = served
    for get in (f"{http_srv.url}/nope",):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(get, timeout=30)
        assert err.value.code == 404
    status, payload = _post(f"{http_srv.url}/predictx", {"rows": [[0.0]]})
    assert status == 404 and payload["error"] == "not_found"


# --------------------------------------------------------------------------
# Error mapping
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "payload",
    [
        {},  # no rows
        {"rows": [[0.0] * D], "surprise": 1},  # unknown field
        {"rows": "nonsense"},  # not numeric
        {"rows": [[0.0] * (D + 1)]},  # wrong feature count
        {"rows": [[0.0] * D], "tags": "not-a-dict"},
        {"rows": [[0.0] * D], "deadline_s": -1.0},
    ],
    ids=["no-rows", "unknown-field", "non-numeric", "bad-features",
         "bad-tags", "bad-deadline"],
)
def test_malformed_requests_400(served, payload):
    _, _, http_srv = served
    status, body = _post(f"{http_srv.url}/predict", payload)
    assert status == 400
    assert body["error"] == "bad_request" and body["detail"]


def test_expired_deadline_maps_to_504_shed(served):
    """A shed request surfaces as 504 with the shed flag — and the
    HttpClient raises the same DeadlineExceeded the engine raises."""
    group, _, _ = served
    with ModelServer(
        group=group, options=ServeOptions(batch_wait_s=5e-3)
    ) as slow:
        with ServeHTTPServer(slow) as adapter:
            status, body = _post(
                f"{adapter.url}/predict",
                {"rows": np.zeros((1, D)).tolist(), "deadline_s": 1e-6},
            )
            assert status == 504
            assert body["error"] == "deadline_exceeded"
            assert body["shed"] is True
            with pytest.raises(DeadlineExceeded):
                HttpClient(adapter.url).predict_request(
                    PredictRequest(rows=np.zeros((1, D)), deadline_s=1e-6)
                )
            shed = slow.stats()["counters"]["serve/http_shed"]
            assert shed == 2


def test_closed_engine_maps_to_503(served):
    group, _, _ = served
    engine = ModelServer(group=group)
    adapter = ServeHTTPServer(engine)
    try:
        engine.close()
        status, body = _post(
            f"{adapter.url}/predict", {"rows": np.zeros((1, D)).tolist()}
        )
        assert status == 503 and body["error"] == "unavailable"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{adapter.url}/healthz", timeout=30)
        assert err.value.code == 503
        # The client surface raises the engine's exception type.
        with pytest.raises(ShardError):
            HttpClient(adapter.url).predict(np.zeros((1, D)))
    finally:
        adapter.close()


def test_http_client_raises_configuration_error_on_400(served):
    _, _, http_srv = served
    with pytest.raises(ConfigurationError):
        HttpClient(http_srv.url).predict(np.zeros((1, D + 2)))


# --------------------------------------------------------------------------
# Client interface and adapter lifecycle
# --------------------------------------------------------------------------


def test_both_clients_satisfy_protocol_and_agree(served):
    group, server, http_srv = served
    local = LocalClient(server)
    remote = HttpClient(http_srv.url)
    assert isinstance(local, ServeClient)
    assert isinstance(remote, ServeClient)
    x = np.random.default_rng(43).standard_normal((6, D))
    np.testing.assert_array_equal(local.predict(x), remote.predict(x))
    assert local.health()["run_id"] == remote.health()["run_id"]
    assert (
        local.stats()["run_id"]["id"] == remote.stats()["run_id"]["id"]
    )


def test_http_client_validates_construction():
    with pytest.raises(ConfigurationError, match="base_url"):
        HttpClient("ftp://example")
    with pytest.raises(ConfigurationError, match="timeout_s"):
        HttpClient("http://127.0.0.1:1", timeout_s=0)


def test_adapter_rejects_closed_engine(served):
    group, _, _ = served
    engine = ModelServer(group=group)
    engine.close()
    with pytest.raises(ConfigurationError, match="closed"):
        ServeHTTPServer(engine)


def test_adapter_close_is_idempotent_and_borrows(served):
    group, _, _ = served
    engine = ModelServer(group=group)
    adapter = ServeHTTPServer(engine)
    url = adapter.url
    adapter.close()
    adapter.close()
    assert adapter.closed
    # Borrowed engine still serves in-process after the listener stops.
    engine.predict(np.zeros((1, D)), timeout=60)
    engine.close()
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(f"{url}/healthz", timeout=2)


def test_owns_server_ties_lifecycles(served):
    group, _, _ = served
    engine = ModelServer(group=group)
    with ServeHTTPServer(engine, owns_server=True):
        pass
    assert engine.closed
    assert not group.closed  # the group stays borrowed throughout
