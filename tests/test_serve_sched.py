"""Scheduling/QoS suite for the serving engine (:mod:`repro.serve`).

Covers the request-API redesign and the dispatcher's scheduling
policies: the typed :class:`~repro.serve.PredictRequest` /
:class:`~repro.serve.PredictResponse` vocabulary, priority-first cohort
formation, deadline shedding (``DeadlineExceeded`` before any shard
work), the adaptive micro-batch window's ``[floor, ceiling]`` contract
under bursty vs steady arrivals, and the timeout-abandon bugfix (a
timed-out caller's request must not occupy cohort budget).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DeadlineExceeded
from repro.kernels import GaussianKernel
from repro.observe import MetricsRegistry
from repro.serve import (
    ADAPTIVE,
    AdaptiveWindow,
    ModelServer,
    PredictRequest,
    PredictResponse,
    ServeOptions,
    WindowOptions,
)
from repro.shard import ShardGroup, sharded_predict

N, D, L = 167, 4, 3


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(13)
    centers = rng.standard_normal((N, D))
    weights = rng.standard_normal((N, L))
    kernel = GaussianKernel(bandwidth=2.0)
    x = rng.standard_normal((5, D))
    return kernel, centers, weights, x


@pytest.fixture()
def group(problem):
    kernel, centers, weights, _ = problem
    with ShardGroup.build(
        centers, weights, g=2, kernel=kernel, transport="thread"
    ) as g:
        yield g


# --------------------------------------------------------------------------
# Typed request/response API
# --------------------------------------------------------------------------


class TestRequestAPI:
    def test_defaults_and_auto_request_id(self):
        a = PredictRequest(rows=np.zeros((2, D)))
        b = PredictRequest(rows=np.zeros((2, D)))
        assert a.priority == 0 and a.deadline_s is None
        assert a.request_id and b.request_id and a.request_id != b.request_id

    @pytest.mark.parametrize("deadline", [0.0, -1.0])
    def test_nonpositive_deadline_rejected(self, deadline):
        with pytest.raises(ConfigurationError, match="deadline_s"):
            PredictRequest(rows=np.zeros((1, D)), deadline_s=deadline)

    def test_fractional_priority_rejected(self):
        with pytest.raises(ConfigurationError, match="priority"):
            PredictRequest(rows=np.zeros((1, D)), priority=1.5)

    @pytest.mark.parametrize("rid", ["", 7])
    def test_bad_request_id_rejected(self, rid):
        with pytest.raises(ConfigurationError, match="request_id"):
            PredictRequest(rows=np.zeros((1, D)), request_id=rid)

    def test_response_as_dict_is_json_bitwise(self):
        values = np.array([[0.1, 1 / 3, np.pi], [1e-308, -7.5, 2.0]])
        resp = PredictResponse(
            values=values, run_id="run", request_id="r-1",
            queue_s=1e-4, batch_s=2e-4,
        )
        back = json.loads(json.dumps(resp.as_dict()))
        np.testing.assert_array_equal(
            np.asarray(back["values"], dtype=np.float64), values
        )
        assert back["shed"] is False and back["retries"] == 0

    def test_submit_request_resolves_to_response(self, problem, group):
        _, _, _, x = problem
        want = np.asarray(sharded_predict(group, x))
        server = ModelServer(group=group)
        try:
            req = PredictRequest(rows=x, priority=3, tags={"tenant": "t0"})
            resp = server.submit_request(req).result(timeout=60)
        finally:
            server.close()
        assert isinstance(resp, PredictResponse)
        assert resp.request_id == req.request_id
        assert resp.run_id == server.run_id
        assert resp.queue_s >= 0 and resp.batch_s > 0
        assert resp.retries == 0 and resp.shed is False
        np.testing.assert_array_equal(resp.values, want)

    def test_predict_request_and_raw_array_share_bits(self, problem, group):
        _, _, _, x = problem
        server = ModelServer(group=group)
        try:
            via_request = server.predict_request(
                PredictRequest(rows=x), timeout=60
            ).values
            via_array = server.predict(x, timeout=60)
        finally:
            server.close()
        np.testing.assert_array_equal(via_request, via_array)


# --------------------------------------------------------------------------
# Deadline shedding
# --------------------------------------------------------------------------


class TestDeadlineShedding:
    def test_expired_request_sheds_without_a_tick(self, problem, group):
        _, _, _, x = problem
        metrics = MetricsRegistry()
        server = ModelServer(
            group=group, metrics=metrics,
            options=ServeOptions(batch_wait_s=5e-3),
        )
        try:
            doomed = [
                server.submit_request(
                    PredictRequest(rows=x, deadline_s=1e-6)
                )
                for _ in range(3)
            ]
            for f in doomed:
                exc = f.exception(timeout=30)
                assert isinstance(exc, DeadlineExceeded)
                assert "shed" in str(exc)
            # Admitted traffic on the same engine is unaffected.
            want = np.asarray(sharded_predict(group, x))
            np.testing.assert_array_equal(
                server.predict(x, timeout=60), want
            )
        finally:
            server.close()
        counters = metrics.snapshot()["counters"]
        assert counters.get("serve/shed_requests", 0) == len(doomed)
        # "No tick consumed": only the admitted request ever rode one.
        ticked = sum(metrics.histogram_values("serve/batch_requests"))
        assert ticked == 1

    def test_generous_deadline_is_served(self, problem, group):
        _, _, _, x = problem
        server = ModelServer(group=group)
        try:
            resp = server.predict_request(
                PredictRequest(rows=x, deadline_s=60.0), timeout=60
            )
        finally:
            server.close()
        np.testing.assert_array_equal(
            resp.values, np.asarray(sharded_predict(group, x))
        )

    def test_deadline_exceeded_is_a_shard_error(self):
        from repro.exceptions import ReproError, ShardError

        assert issubclass(DeadlineExceeded, ShardError)
        assert issubclass(DeadlineExceeded, ReproError)


# --------------------------------------------------------------------------
# Priority scheduling
# --------------------------------------------------------------------------


class TestPriorityScheduling:
    def _serve_order(self, group, x, priorities, *, max_batch_requests):
        """Deterministic scheduling probe: a plug request's tick is
        gated on an event, so every probe request is queued *behind* it
        when cohorts form — the completion order then reveals the
        dispatcher's scheduling, free of submit-timing races."""
        order: list[int] = []
        lock = threading.Lock()
        gate = threading.Event()
        real_async = group.map_allreduce_async
        first_tick = threading.Event()

        def gated_async(*args, **kwargs):
            if not first_tick.is_set():
                first_tick.set()
                gate.wait(timeout=30)
            return real_async(*args, **kwargs)

        group.map_allreduce_async = gated_async
        server = ModelServer(
            group=group,
            options=ServeOptions(
                batch_wait_s=0.0,
                max_batch_requests=max_batch_requests,
                pipeline_depth=1,
            ),
        )
        try:
            plug = server.submit(x)  # rides the gated first tick
            assert first_tick.wait(timeout=30)
            futures = []
            for prio in priorities:
                fut = server.submit_request(
                    PredictRequest(rows=x, priority=prio)
                )
                fut.add_done_callback(
                    lambda _f, p=prio: (
                        lock.__enter__(), order.append(p), lock.__exit__(
                            None, None, None
                        )
                    )
                )
                futures.append(fut)
            gate.set()
            plug.result(timeout=60)
            for f in futures:
                f.result(timeout=60)
        finally:
            gate.set()
            server.close()
            group.map_allreduce_async = real_async
        return order

    def test_priority_beats_fifo_across_ticks(self, problem, group):
        """One request per tick: service order is priority order, not
        arrival order."""
        _, _, _, x = problem
        priorities = [0, 5, 1, 9]
        order = self._serve_order(
            group, x, priorities, max_batch_requests=1
        )
        assert order == sorted(priorities, reverse=True)

    def test_high_priority_rides_first_cohort(self, problem, group):
        """Cohort budget of two: the first tick carries the two
        high-priority requests even though they arrived last."""
        _, _, _, x = problem
        order = self._serve_order(
            group, x, [0, 0, 5, 5], max_batch_requests=2
        )
        assert order[:2] == [5, 5]

    def test_equal_priority_keeps_fifo(self, problem, group):
        _, _, _, x = problem
        server = ModelServer(
            group=group,
            options=ServeOptions(
                batch_wait_s=0.15, max_batch_requests=1, pipeline_depth=1
            ),
        )
        order: list[str] = []
        lock = threading.Lock()
        try:
            futures = []
            for rid in ("first", "second", "third"):
                fut = server.submit_request(
                    PredictRequest(rows=x, request_id=rid)
                )
                fut.add_done_callback(
                    lambda _f, r=rid: (
                        lock.__enter__(), order.append(r), lock.__exit__(
                            None, None, None
                        )
                    )
                )
                futures.append(fut)
            for f in futures:
                f.result(timeout=60)
        finally:
            server.close()
        assert order == ["first", "second", "third"]


# --------------------------------------------------------------------------
# Adaptive micro-batch window
# --------------------------------------------------------------------------


class TestAdaptiveWindow:
    def test_burst_collapses_to_floor(self):
        win = AdaptiveWindow(
            WindowOptions(floor_s=1e-5, ceiling_s=2e-3, target_requests=8)
        )
        t = 0.0
        for _ in range(50):
            win.observe_arrival(t)
            t += 1e-7  # back-to-back burst
        assert win.window_s() == pytest.approx(1e-5)  # clamped to floor

    def test_steady_sparse_hits_ceiling(self):
        win = AdaptiveWindow(
            WindowOptions(floor_s=0.0, ceiling_s=2e-3, target_requests=8)
        )
        t = 0.0
        for _ in range(50):
            win.observe_arrival(t)
            t += 1e-3  # 1ms apart: projected 7ms >> ceiling
        assert win.window_s() == pytest.approx(2e-3)

    def test_window_tracks_gap_between_bounds(self):
        win = AdaptiveWindow(
            WindowOptions(floor_s=0.0, ceiling_s=1.0, target_requests=4)
        )
        t = 0.0
        for _ in range(200):
            win.observe_arrival(t)
            t += 1e-3
        # EWMA converges to the true gap; projection = gap * (target-1).
        assert win.gap_ewma_s == pytest.approx(1e-3, rel=1e-6)
        assert win.window_s() == pytest.approx(3e-3, rel=1e-6)

    def test_idle_gap_does_not_poison_estimate(self):
        win = AdaptiveWindow(
            WindowOptions(
                floor_s=0.0, ceiling_s=10.0, target_requests=2,
                max_gap_s=0.5,
            )
        )
        win.observe_arrival(0.0)
        win.observe_arrival(1e-3)
        before = win.window_s()
        win.observe_arrival(60.0)  # server sat idle for a minute
        assert win.window_s() == before
        # The post-idle arrival restarts the pair: the next gap counts.
        win.observe_arrival(60.0 + 1e-3)
        assert win.gap_ewma_s is not None

    def test_no_estimate_means_floor(self):
        win = AdaptiveWindow(WindowOptions(floor_s=1e-4, ceiling_s=1e-2))
        assert win.window_s() == pytest.approx(1e-4)
        win.observe_arrival(0.0)  # one arrival: still no gap
        assert win.window_s() == pytest.approx(1e-4)

    def test_options_validation(self):
        with pytest.raises(ConfigurationError, match="ceiling_s"):
            WindowOptions(floor_s=1e-3, ceiling_s=1e-4)
        with pytest.raises(ConfigurationError, match="alpha"):
            WindowOptions(alpha=0.0)
        with pytest.raises(ConfigurationError, match="target_requests"):
            WindowOptions(target_requests=0)
        with pytest.raises(ConfigurationError, match="max_gap_s"):
            WindowOptions(max_gap_s=0.0)

    def test_serve_options_adaptive_spelling(self):
        opts = ServeOptions(batch_wait=ADAPTIVE)
        assert opts.adaptive_window
        assert ServeOptions(batch_wait_s="adaptive").adaptive_window
        assert not ServeOptions(batch_wait_s=1e-3).adaptive_window
        with pytest.raises(ConfigurationError):
            ServeOptions(batch_wait="sometimes")
        with pytest.raises(ConfigurationError):
            # WindowOptions without opting into the adaptive window.
            ServeOptions(batch_wait_s=1e-3, adaptive=WindowOptions())
        with pytest.raises(ConfigurationError):
            ServeOptions(batch_wait=1e-3, batch_wait_s=2e-3)

    @pytest.mark.parametrize(
        "load", ["bursty", "steady"], ids=["bursty", "steady"]
    )
    def test_served_windows_stay_in_band(self, problem, group, load):
        """End to end: every serve/window_s decision the dispatcher
        records stays inside the configured band, bursty or steady."""
        _, _, _, x = problem
        win = WindowOptions(floor_s=0.0, ceiling_s=1.5e-3)
        metrics = MetricsRegistry()
        server = ModelServer(
            group=group, metrics=metrics,
            options=ServeOptions(batch_wait="adaptive", adaptive=win),
        )
        try:
            want = np.asarray(sharded_predict(group, x))
            for _ in range(4):
                futures = [server.submit(x) for _ in range(6)]
                for f in futures:
                    np.testing.assert_array_equal(
                        f.result(timeout=60), want
                    )
                if load == "steady":
                    time.sleep(2e-3)
        finally:
            server.close()
        windows = metrics.histogram_values("serve/window_s")
        assert windows, "adaptive dispatcher recorded no window decisions"
        assert all(win.floor_s <= w <= win.ceiling_s for w in windows)


# --------------------------------------------------------------------------
# Timeout-abandon bugfix
# --------------------------------------------------------------------------


class TestTimeoutAbandon:
    def test_timed_out_request_leaves_the_cohort(self, problem, group):
        """predict(timeout=...) that fires while the request is queued
        cancels the future: the dispatcher culls it at cohort formation
        (counted, no spans, no result) instead of serving a caller that
        already gave up."""
        _, _, _, x = problem
        metrics = MetricsRegistry()
        server = ModelServer(
            group=group, metrics=metrics,
            options=ServeOptions(batch_wait_s=0.2, pipeline_depth=1),
        )
        try:
            with pytest.raises((FutureTimeout, TimeoutError)):
                server.predict(x, timeout=1e-3)
            # A later caller is served normally on the same engine.
            np.testing.assert_array_equal(
                server.predict(x, timeout=60),
                np.asarray(sharded_predict(group, x)),
            )
        finally:
            server.close()
        counters = metrics.snapshot()["counters"]
        assert counters.get("serve/abandoned_requests", 0) >= 1
        # The abandoned request never rode a tick: every cohort request
        # accounted in the histogram was a served one.
        served = int(counters.get("serve/requests", 0))
        ticked = sum(metrics.histogram_values("serve/batch_requests"))
        assert ticked == served

    def test_timed_out_running_request_still_resolves(self, problem, group):
        """Once claimed by a tick the request is past cancelling; the
        caller's timeout raises but the future completes server-side
        (no InvalidStateError, no stuck dispatcher)."""
        _, _, _, x = problem
        server = ModelServer(group=group)
        try:
            fut = server.submit(x)
            with pytest.raises((FutureTimeout, TimeoutError)):
                fut.result(timeout=0)
            np.testing.assert_array_equal(
                fut.result(timeout=60),
                np.asarray(sharded_predict(group, x)),
            )
        finally:
            server.close()
