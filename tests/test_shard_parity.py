"""Parity suite for the executable multi-shard engine (:mod:`repro.shard`).

The engine earns its keep only if sharding is *invisible* to the numbers:
for ``g in {1, 2, 4}`` the sharded primitives must match the
single-backend results (within 1e-6 in float64 — in practice they agree
to ~1e-14, differing only in partial-sum order), aggregated compute op
counts must equal the unsharded counts exactly (communication is metered
separately under ``"allreduce"``), and the sharded EigenPro 2.0 trainer
must track the unsharded trainer iteration for iteration.

Set ``REPRO_SHARD_G`` to restrict the shard counts exercised (the CI
shard job runs one value per matrix entry).
"""

from __future__ import annotations

import importlib.util
import os

import numpy as np
import pytest

from repro.baselines.ridge import solve_ridge
from repro.core.eigenpro2 import EigenPro2
from repro.device.presets import titan_xp
from repro.exceptions import ConfigurationError, ShardError
from repro.instrument import meter_scope
from repro.kernels import GaussianKernel, LaplacianKernel, PolynomialKernel
from repro.kernels.ops import kernel_matvec
from repro.shard import (
    ShardGroup,
    ShardPlan,
    ShardedEigenPro2,
    allreduce_sum,
    sharded_kernel_matvec,
    sharded_predict,
)

_ENV_G = os.environ.get("REPRO_SHARD_G")
G_VALUES = [int(_ENV_G)] if _ENV_G else [1, 2, 4]

shard_counts = pytest.mark.parametrize("g", G_VALUES)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(7)
    centers = rng.standard_normal((203, 6))
    weights = rng.standard_normal((203, 3))
    x = rng.standard_normal((57, 6))
    return centers, weights, x


class TestShardPlan:
    def test_sizes_partition_n(self):
        plan = ShardPlan.contiguous(10, 3)
        assert plan.sizes == (4, 3, 3)
        assert sum(plan.sizes) == plan.n == 10
        assert plan.bounds == (0, 4, 7, 10)

    def test_balanced(self):
        for n, g in [(100, 7), (16, 16), (5, 2)]:
            sizes = ShardPlan.contiguous(n, g).sizes
            assert max(sizes) - min(sizes) <= 1

    def test_slices_cover_rows(self):
        plan = ShardPlan.contiguous(23, 4)
        rows = np.concatenate([np.arange(23)[s] for s in plan.slices])
        np.testing.assert_array_equal(rows, np.arange(23))

    def test_shard_of(self):
        plan = ShardPlan.contiguous(10, 3)
        assert [plan.shard_of(i) for i in (0, 3, 4, 6, 7, 9)] == [
            0, 0, 1, 1, 2, 2,
        ]

    def test_localize_roundtrip(self):
        plan = ShardPlan.contiguous(50, 4)
        idx = np.array([3, 49, 12, 0, 30, 31, 13])
        recovered = np.empty_like(idx)
        for s, (positions, local) in enumerate(plan.localize(idx)):
            recovered[positions] = local + plan.bounds[s]
        np.testing.assert_array_equal(recovered, idx)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(5, 6)
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(5, 0)
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(0, 1)
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(10, 3).shard_of(10)
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(10, 3).localize(np.array([11]))


class TestShardedOps:
    @shard_counts
    def test_matvec_matches_single_backend(self, problem, g):
        centers, weights, x = problem
        kernel = LaplacianKernel(bandwidth=2.0)
        ref = kernel_matvec(kernel, x, centers, weights)
        with ShardGroup.build(centers, weights, g=g, kernel=kernel) as group:
            got = sharded_kernel_matvec(kernel, x, group)
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)

    @shard_counts
    def test_predict_matches_single_backend(self, problem, g):
        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        ref = kernel_matvec(kernel, x, centers, weights)
        with ShardGroup.build(centers, weights, g=g, kernel=kernel) as group:
            got = sharded_predict(group, x)
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)

    @shard_counts
    def test_vector_weights(self, problem, g):
        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        ref = kernel_matvec(kernel, x, centers, weights[:, 0])
        with ShardGroup.build(centers, weights[:, 0], g=g) as group:
            got = sharded_kernel_matvec(kernel, x, group)
        assert got.shape == (x.shape[0],)
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)

    @shard_counts
    def test_non_radial_kernel(self, problem, g):
        """Kernels that ignore z_sq_norms shard identically."""
        centers, weights, x = problem
        kernel = PolynomialKernel(degree=2, gamma=0.1, coef0=1.0)
        ref = kernel_matvec(kernel, x, centers, weights)
        with ShardGroup.build(centers, weights, g=g, kernel=kernel) as group:
            got = sharded_kernel_matvec(kernel, x, group)
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)

    @shard_counts
    def test_aggregated_op_counts_equal_unsharded(self, problem, g):
        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        with meter_scope() as ref_meter:
            kernel_matvec(kernel, x, centers, weights)
        with ShardGroup.build(centers, weights, g=g, kernel=kernel) as group:
            with meter_scope() as meter:
                sharded_kernel_matvec(kernel, x, group)
            per_shard = group.op_counts()
        for category in ("kernel_eval", "gemm"):
            assert (
                meter.counts[category].ops == ref_meter.counts[category].ops
            ), category
            # The relayed caller totals come from the shard meters.
            assert per_shard[category] == ref_meter.counts[category].ops
        # Communication is metered separately and vanishes at g=1.
        allreduce = meter.counts["allreduce"].ops if "allreduce" in meter.counts else 0
        if g == 1:
            assert allreduce == 0
        else:
            assert allreduce == (g - 1) * x.shape[0] * weights.shape[1]

    @shard_counts
    def test_memory_accounting_aggregates(self, problem, g):
        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        with ShardGroup.build(centers, weights, g=g, kernel=kernel) as group:
            report = group.memory_report()
            n, d = centers.shape
            assert report["resident_total"] == n * d + weights.size
            assert len(report["resident_per_shard"]) == g
            sharded_kernel_matvec(kernel, x, group)
            report = group.memory_report()
            # Each shard's streamed block scratch is bounded by its own
            # (n_x, n_i) block; summed, that is at most the unsharded block.
            assert 0 < report["workspace_peak_total"] <= x.shape[0] * n

    @shard_counts
    def test_precision_scope_propagates_to_shards(self, problem, g):
        """An ambient explicit precision is thread-local; executors must
        re-establish the caller's scope so the sharded result has the
        same working dtype as the unsharded one."""
        from repro.config import use_precision

        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        with use_precision("float32"):
            ref = kernel_matvec(kernel, x, centers, weights)
            with ShardGroup.build(
                centers, weights, g=g, kernel=kernel
            ) as group:
                got = sharded_kernel_matvec(kernel, x, group)
        assert np.asarray(got).dtype == np.float32
        np.testing.assert_allclose(got, ref, atol=1e-4, rtol=0)

    def test_numpy_shards_adopt_views(self, problem):
        centers, weights, _ = problem
        weights = weights.copy()
        with ShardGroup.build(centers, weights, g=2) as group:
            assert all(ex.weights_is_view for ex in group.executors)
            group.executors[0].weights[0, 0] = 123.0
            assert weights[0, 0] == 123.0

    def test_gather_set_weights_roundtrip(self, problem):
        centers, weights, _ = problem
        with ShardGroup.build(centers, weights, g=3) as group:
            np.testing.assert_array_equal(group.gather_weights(), weights)
            new = weights * 2.0
            group.set_weights(new)
            np.testing.assert_array_equal(group.gather_weights(), new)

    def test_allreduce_sum(self):
        parts = [np.full((4, 2), float(i)) for i in range(3)]
        np.testing.assert_array_equal(allreduce_sum(parts), np.full((4, 2), 3.0))
        with pytest.raises(ConfigurationError):
            allreduce_sum([])

    def test_predict_without_kernel_rejected(self, problem):
        centers, weights, x = problem
        with ShardGroup.build(centers, weights, g=2) as group:
            with pytest.raises(ConfigurationError):
                sharded_predict(group, x)


class TestShardedEigenPro2:
    def _fit_pair(self, dataset, g, epochs=2):
        kwargs = dict(s=80, batch_size=32, seed=0, damping=0.9)
        ref = EigenPro2(
            GaussianKernel(bandwidth=2.5), device=titan_xp(), **kwargs
        )
        ref.fit(dataset.x_train, dataset.y_train, epochs=epochs)
        sharded = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=g,
            device=titan_xp(),
            **kwargs,
        )
        sharded.fit(dataset.x_train, dataset.y_train, epochs=epochs)
        return ref, sharded

    @shard_counts
    def test_matches_unsharded_trainer(self, small_dataset, g):
        ref, sharded = self._fit_pair(small_dataset, g)
        try:
            scale = max(float(np.abs(ref._alpha).max()), 1.0)
            np.testing.assert_allclose(
                sharded._alpha, ref._alpha, atol=1e-6 * scale, rtol=0
            )
            np.testing.assert_allclose(
                sharded.history_.series("train_mse"),
                ref.history_.series("train_mse"),
                rtol=1e-6,
            )
            # Selection (Steps 1-3) is identical: same device, same seed.
            assert sharded.params_.q_adjusted == ref.params_.q_adjusted
            assert sharded.step_size_ == ref.step_size_
        finally:
            sharded.close()

    @shard_counts
    def test_sharded_predict_matches_model(self, small_dataset, g):
        ref, sharded = self._fit_pair(small_dataset, g, epochs=1)
        try:
            got = sharded.predict_sharded(small_dataset.x_test)
            want = ref.predict(small_dataset.x_test)
            scale = max(float(np.abs(want).max()), 1.0)
            np.testing.assert_allclose(got, want, atol=1e-6 * scale, rtol=0)
        finally:
            sharded.close()

    @shard_counts
    def test_op_counts_match_unsharded(self, small_dataset, g):
        kwargs = dict(s=60, batch_size=40, seed=0)
        with meter_scope() as ref_meter:
            EigenPro2(
                GaussianKernel(bandwidth=2.5), device=titan_xp(), **kwargs
            ).fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=g,
            device=titan_xp(),
            **kwargs,
        )
        try:
            with meter_scope() as meter:
                trainer.fit(
                    small_dataset.x_train, small_dataset.y_train, epochs=1
                )
            for category in ("kernel_eval", "gemm", "precond"):
                assert (
                    meter.counts[category].ops
                    == ref_meter.counts[category].ops
                ), category
        finally:
            trainer.close()

    def test_default_device_is_cluster_aggregate(self):
        trainer = ShardedEigenPro2(GaussianKernel(bandwidth=2.0), n_shards=4)
        assert "x4" in trainer.device.name
        single = ShardedEigenPro2(GaussianKernel(bandwidth=2.0), n_shards=1)
        assert "x1" in single.device.name

    def test_backend_sequence_fixes_shard_count(self):
        from repro.backend import NumpyBackend

        backends = [NumpyBackend() for _ in range(4)]
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.0), shard_backends=backends
        )
        # The modelled cluster must match the cluster that executes.
        assert trainer.n_shards == 4
        assert "x4" in trainer.device.name
        with pytest.raises(ConfigurationError):
            ShardedEigenPro2(
                GaussianKernel(bandwidth=2.0),
                n_shards=2,
                shard_backends=backends,
            )

    def test_refit_rebuilds_group(self, small_dataset):
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=2,
            device=titan_xp(),
            s=40,
            batch_size=16,
            seed=0,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            first = trainer.shard_group_
            # Refit on a smaller set: the old group is replaced and closed.
            trainer.fit(
                small_dataset.x_train[:100],
                small_dataset.y_train[:100],
                epochs=1,
            )
            assert trainer.shard_group_ is not first
            assert trainer.shard_group_.plan.n == 100
            with pytest.raises(ShardError):
                first.executors[0].submit(lambda ex: None)
        finally:
            trainer.close()

    def test_shard_count_clamped_to_n(self, small_dataset):
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.5),
            n_shards=G_VALUES[-1],
            device=titan_xp(),
            s=40,
            batch_size=16,
            seed=0,
        )
        try:
            x = small_dataset.x_train[: max(G_VALUES[-1] // 2, 2)]
            y = small_dataset.y_train[: max(G_VALUES[-1] // 2, 2)]
            trainer.fit(x, y, epochs=1)
            assert trainer.shard_group_.g <= x.shape[0]
        finally:
            trainer.close()


class TestShardValidationHarness:
    def test_emits_modelled_vs_measured(self):
        from repro.experiments import ShardValidationConfig, run_shard_validation

        cfg = ShardValidationConfig(
            n=400, m=32, shard_counts=tuple(G_VALUES),
            n_iterations=3, warmup=1,
        )
        result = run_shard_validation(cfg)
        assert len(result.rows) == len(G_VALUES)
        for row in result.rows:
            assert row["modelled_ms"] > 0
            assert row["measured_ms"] > 0
        failed = [c.claim_id for c in result.claims if c.holds is False]
        assert not failed, f"claims failed: {failed}"


class TestRidgeOnBackendLayer:
    """The ridge baseline now dispatches through the backend layer, so it
    can run on any backend instance — including inside a shard executor."""

    def test_numpy_results_unchanged(self, small_xy):
        x, y = small_xy
        model = solve_ridge(GaussianKernel(bandwidth=2.0), x, y, 1e-8)
        assert model.mse(x, y) < 1e-6

    def test_runs_inside_a_shard_executor(self, small_xy):
        x, y = small_xy
        ref = solve_ridge(GaussianKernel(bandwidth=2.0), x, y, 1e-6)
        with ShardGroup.build(x, y, g=2) as group:
            models = group.map(
                lambda ex: solve_ridge(
                    GaussianKernel(bandwidth=2.0), x, y, 1e-6
                )
            )
        for model in models:
            np.testing.assert_allclose(
                model.weights, ref.weights, atol=1e-8
            )

    @pytest.mark.skipif(
        importlib.util.find_spec("torch") is None,
        reason="torch not installed — Torch backend unavailable",
    )
    def test_matches_under_torch(self, small_xy):
        from repro.backend import use_backend

        x, y = small_xy
        ref = solve_ridge(GaussianKernel(bandwidth=2.0), x, y, 1e-6)
        with use_backend("torch"):
            got = solve_ridge(GaussianKernel(bandwidth=2.0), x, y, 1e-6)
        np.testing.assert_allclose(
            np.asarray(got.weights), ref.weights, atol=1e-8
        )
