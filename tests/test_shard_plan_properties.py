"""Property-based tests for :class:`repro.shard.ShardPlan`.

The plan is the static foundation the whole transport layer trusts: every
transport slices centers/weights by ``plan.slices`` and reassembles
scatter/gather round-trips by ``plan.localize``.  Hypothesis pins the
invariants over the full (n, g) lattice — balanced ragged tails, the
n < g rejection, and exact global↔local index round-trips — rather than
the handful of fixed cases in ``tests/test_shard_parity.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.shard import ShardPlan

SETTINGS = settings(max_examples=120, deadline=None)


@st.composite
def n_and_g(draw):
    n = draw(st.integers(min_value=1, max_value=257))
    g = draw(st.integers(min_value=1, max_value=n))
    return n, g


@st.composite
def plan_and_indices(draw):
    n, g = draw(n_and_g())
    idx = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=0,
            max_size=64,
        )
    )
    return ShardPlan.contiguous(n, g), np.asarray(idx, dtype=np.intp)


class TestPartitionProperties:
    @SETTINGS
    @given(n_and_g())
    def test_slices_cover_range_exactly_once(self, ng):
        """The slices tile [0, n): every row appears in exactly one
        shard, in order."""
        n, g = ng
        plan = ShardPlan.contiguous(n, g)
        rows = np.concatenate([np.arange(n)[s] for s in plan.slices])
        np.testing.assert_array_equal(rows, np.arange(n))

    @SETTINGS
    @given(n_and_g())
    def test_bounds_and_sizes_consistent(self, ng):
        n, g = ng
        plan = ShardPlan.contiguous(n, g)
        assert plan.g == g
        assert plan.bounds[0] == 0 and plan.bounds[-1] == n
        assert list(plan.bounds) == sorted(plan.bounds)
        assert sum(plan.sizes) == n
        assert len(plan.sizes) == g

    @SETTINGS
    @given(n_and_g())
    def test_balanced_even_with_ragged_tail(self, ng):
        """Shard sizes differ by at most one row, however ragged n/g is,
        and no shard is empty (g <= n)."""
        n, g = ng
        sizes = ShardPlan.contiguous(n, g).sizes
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1
        # The ragged remainder lands on the leading shards.
        assert list(sizes) == sorted(sizes, reverse=True)

    @SETTINGS
    @given(n_and_g())
    def test_shard_of_agrees_with_slices(self, ng):
        n, g = ng
        plan = ShardPlan.contiguous(n, g)
        for s, sl in enumerate(plan.slices):
            for i in {sl.start, sl.stop - 1}:
                assert plan.shard_of(i) == s

    @SETTINGS
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=64))
    def test_n_smaller_than_g_rejected(self, n, extra):
        """g cannot exceed n: an empty shard would break the transports'
        one-worker-per-shard contract; callers clamp first (as the
        sharded trainer does)."""
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(n, n + extra)

    @SETTINGS
    @given(st.integers(min_value=1, max_value=64))
    def test_degenerate_counts_rejected(self, n):
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(n, 0)
        with pytest.raises(ConfigurationError):
            ShardPlan.contiguous(0, 1)


class TestLocalizeProperties:
    @SETTINGS
    @given(plan_and_indices())
    def test_global_local_roundtrip(self, plan_idx):
        """localize splits any (unsorted, repeated) global index array so
        that local + bounds[shard] recovers the original in place."""
        plan, idx = plan_idx
        recovered = np.full(idx.shape, -1, dtype=idx.dtype)
        seen_positions = []
        for s, (positions, local) in enumerate(plan.localize(idx)):
            assert positions.shape == local.shape
            if local.size:
                assert local.min() >= 0
                assert local.max() < plan.sizes[s]
            recovered[positions] = local + plan.bounds[s]
            seen_positions.append(positions)
        np.testing.assert_array_equal(recovered, idx)
        # Each position is owned by exactly one shard.
        all_positions = np.concatenate(seen_positions)
        assert all_positions.size == idx.size
        assert np.unique(all_positions).size == idx.size

    @SETTINGS
    @given(plan_and_indices())
    def test_localize_owner_matches_shard_of(self, plan_idx):
        plan, idx = plan_idx
        for s, (positions, _) in enumerate(plan.localize(idx)):
            for p in positions[:8]:
                assert plan.shard_of(int(idx[p])) == s

    @SETTINGS
    @given(n_and_g())
    def test_out_of_range_rejected(self, ng):
        n, g = ng
        plan = ShardPlan.contiguous(n, g)
        with pytest.raises(ConfigurationError):
            plan.localize(np.array([n]))
        with pytest.raises(ConfigurationError):
            plan.localize(np.array([-1]))
        with pytest.raises(ConfigurationError):
            plan.shard_of(n)
