"""Cross-transport conformance suite for the shard transport layer.

One parameterized suite pins every transport (thread, process — a future
NCCL executor joins the same list) to the same contract:

- **bitwise parity across transports**: for a fixed shard plan, weights,
  histories and sharded-op results are *bit-identical* between
  transports — every transport runs the same task functions on the same
  shard slices, and a transport moves bytes, it never re-computes;
- **parity with the unsharded trainer**: exact (bitwise) at ``g = 1``;
  for ``g > 1`` within 1e-6 of scale (the per-shard partial sums
  necessarily associate the floating-point reduction differently than
  one full GEMM);
- **exact aggregate op counts** vs the unsharded trainer for every
  compute category, with communication metered separately under
  ``"allreduce"`` (zero at ``g = 1``);
- **asynchronous mirror-back**: the process transport's row mirror is a
  direct shared-memory write — visible to the workers, no task, no
  barrier;
- seeded runs are reproducible per transport.

``REPRO_SHARD_G`` restricts the shard counts (single value or comma
list, e.g. ``REPRO_SHARD_G=2`` or ``REPRO_SHARD_G=1,2,4``);
``REPRO_SHARD_TRANSPORT`` restricts the transports — both are how the
CI matrix splits the suite.  Process-transport cases auto-skip on
platforms without fork-safe shared memory.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.eigenpro2 import EigenPro2
from repro.device.presets import titan_xp
from repro.exceptions import ConfigurationError
from repro.instrument import meter_scope
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.shard import (
    ShardGroup,
    ShardedEigenPro2,
    available_transports,
    process_transport_available,
    sharded_kernel_matvec,
    sharded_predict,
)

_ENV_G = os.environ.get("REPRO_SHARD_G")
G_VALUES = (
    [int(g) for g in _ENV_G.split(",")] if _ENV_G else [1, 2, 4]
)
_ENV_T = os.environ.get("REPRO_SHARD_TRANSPORT")
ALL_TRANSPORTS = ["thread", "process"]
TRANSPORTS = (
    [t for t in ALL_TRANSPORTS if t in _ENV_T.split(",")]
    if _ENV_T
    else ALL_TRANSPORTS
)

shard_counts = pytest.mark.parametrize("g", G_VALUES)
transports = pytest.mark.parametrize(
    "transport",
    [
        pytest.param(
            t,
            marks=pytest.mark.skipif(
                t == "process" and not process_transport_available(),
                reason="platform lacks fork-safe shared memory",
            ),
        )
        for t in TRANSPORTS
    ],
)

needs_process = pytest.mark.skipif(
    not process_transport_available(),
    reason="platform lacks fork-safe shared memory",
)

KW = dict(s=80, batch_size=32, seed=0, damping=0.9)
BANDWIDTH = 2.5


# Module-level task (picklable) used by the mirror write-through test.
def _read_weight_rows_task(worker, local_idx):
    return np.asarray(worker.weights[local_idx]).copy()


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(13)
    centers = rng.standard_normal((211, 6))
    weights = rng.standard_normal((211, 3))
    x = rng.standard_normal((48, 6))
    return centers, weights, x


def _fit_sharded(ds, transport, g, epochs=2):
    trainer = ShardedEigenPro2(
        GaussianKernel(bandwidth=BANDWIDTH),
        n_shards=g,
        transport=transport,
        device=titan_xp(),
        **KW,
    )
    try:
        with meter_scope() as meter:
            trainer.fit(ds.x_train, ds.y_train, epochs=epochs)
        alpha = np.asarray(trainer._alpha).copy()
        history = trainer.history_.series("train_mse")
        params = trainer.params_
        step = trainer.step_size_
    finally:
        trainer.close()
    return alpha, history, meter.as_dict(), params, step


@pytest.fixture(scope="module")
def unsharded(small_dataset):
    with meter_scope() as meter:
        ref = EigenPro2(
            GaussianKernel(bandwidth=BANDWIDTH), device=titan_xp(), **KW
        )
        ref.fit(small_dataset.x_train, small_dataset.y_train, epochs=2)
    return ref, meter.as_dict()


class TestTrainerConformance:
    @shard_counts
    @needs_process
    def test_transports_bitwise_identical(self, small_dataset, g):
        """The tentpole invariant: thread and process transports produce
        bit-identical weights, histories and op counts."""
        a_thread, h_thread, m_thread, p_thread, s_thread = _fit_sharded(
            small_dataset, "thread", g
        )
        a_proc, h_proc, m_proc, p_proc, s_proc = _fit_sharded(
            small_dataset, "process", g
        )
        np.testing.assert_array_equal(a_proc, a_thread)
        assert h_proc == h_thread
        assert m_proc == m_thread
        assert p_proc == p_thread and s_proc == s_thread

    @shard_counts
    @transports
    def test_matches_unsharded_trainer(self, small_dataset, unsharded, g, transport):
        ref, _ = unsharded
        alpha, history, _, params, step = _fit_sharded(
            small_dataset, transport, g
        )
        ref_alpha = np.asarray(ref._alpha)
        if g == 1:
            # One shard runs the very same arithmetic: exact.
            np.testing.assert_array_equal(alpha, ref_alpha)
        else:
            scale = max(float(np.abs(ref_alpha).max()), 1.0)
            np.testing.assert_allclose(
                alpha, ref_alpha, atol=1e-6 * scale, rtol=0
            )
        np.testing.assert_allclose(
            history, ref.history_.series("train_mse"), rtol=1e-6
        )
        # Selection (Steps 1-3) is identical: same device, same seed.
        assert params.q_adjusted == ref.params_.q_adjusted
        assert step == ref.step_size_

    @shard_counts
    @transports
    def test_aggregate_op_counts_exact(self, small_dataset, unsharded, g, transport):
        _, ref_counts = unsharded
        _, _, counts, _, _ = _fit_sharded(small_dataset, transport, g)
        for category, ops in ref_counts.items():
            assert counts.get(category) == ops, category
        # Communication is metered separately and vanishes at g=1.
        extra = set(counts) - set(ref_counts)
        assert extra <= {"allreduce"}
        if g == 1:
            assert counts.get("allreduce", 0) == 0
        else:
            assert counts.get("allreduce", 0) > 0

    @transports
    def test_seeded_runs_reproducible(self, small_dataset, transport):
        a1, h1, m1, _, _ = _fit_sharded(small_dataset, transport, 2, epochs=1)
        a2, h2, m2, _, _ = _fit_sharded(small_dataset, transport, 2, epochs=1)
        np.testing.assert_array_equal(a1, a2)
        assert h1 == h2 and m1 == m2


class TestShardedOpsConformance:
    @shard_counts
    @needs_process
    def test_matvec_bitwise_across_transports(self, problem, g):
        centers, weights, x = problem
        kernel = LaplacianKernel(bandwidth=2.0)
        results = {}
        for transport in ("thread", "process"):
            with ShardGroup.build(
                centers, weights, g=g, kernel=kernel, transport=transport
            ) as group:
                results[transport] = np.asarray(
                    sharded_kernel_matvec(kernel, x, group)
                )
        np.testing.assert_array_equal(
            results["process"], results["thread"]
        )

    @shard_counts
    @transports
    def test_predict_and_meter(self, problem, g, transport):
        from repro.kernels.ops import kernel_matvec

        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        with meter_scope() as ref_meter:
            ref = kernel_matvec(kernel, x, centers, weights)
        with ShardGroup.build(
            centers, weights, g=g, kernel=kernel, transport=transport
        ) as group:
            with meter_scope() as meter:
                got = sharded_predict(group, x)
            per_shard = group.op_counts()
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)
        for category in ("kernel_eval", "gemm"):
            assert meter.counts[category].ops == ref_meter.counts[category].ops
            assert per_shard[category] == ref_meter.counts[category].ops
        allreduce = meter.as_dict().get("allreduce", 0)
        if g == 1:
            assert allreduce == 0
        else:
            assert allreduce == (g - 1) * x.shape[0] * weights.shape[1]


class TestProcessMirrorBack:
    """The async mirror contract: a direct shared-memory write, visible
    to the workers, riding no task channel."""

    @needs_process
    def test_write_through_without_rpc(self, problem):
        centers, weights, _ = problem
        with ShardGroup.build(
            centers, weights, g=2, transport="process"
        ) as group:
            before = [ex.rpc_count for ex in group.executors]
            idx = np.array([0, 5, centers.shape[0] - 1])
            rows = np.full((3, weights.shape[1]), 42.0)
            assert group.mirror_rows(idx, rows) is None  # no PendingMap
            # No task was queued for the mirror...
            assert [ex.rpc_count for ex in group.executors] == before
            # ...yet the workers observe the new rows.
            parts = group.plan.localize(idx)
            for shard_id, (positions, local) in enumerate(parts):
                if not positions.size:
                    continue
                seen = group.transport.submit(
                    shard_id, _read_weight_rows_task, local
                ).result()
                np.testing.assert_array_equal(seen, rows[positions])

    @needs_process
    def test_trainer_never_queues_mirror_tasks(self, small_dataset):
        """End to end: a pipelined process-transport fit performs no
        per-update mirror barrier — its RPC traffic is exactly the
        form/contract (+ state setup and teardown) tasks."""
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=BANDWIDTH),
            n_shards=2,
            transport="process",
            device=titan_xp(),
            **KW,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            assert trainer._pending_mirror is None
            iterations = trainer.history_.final.iterations
            # Tasks per worker: broadcast + scatter state (2), form +
            # contract per iteration (2 each), one workspace drain.
            expected = 2 + 2 * iterations + 1
            for ex in trainer.shard_group_.executors:
                assert ex.rpc_count == expected
        finally:
            trainer.close()


class TestTransportSelection:
    def test_unknown_transport_rejected(self, problem):
        centers, weights, _ = problem
        with pytest.raises(ConfigurationError):
            ShardGroup.build(centers, weights, g=2, transport="nccl")

    @needs_process
    def test_process_rejects_device_backends(self, problem):
        centers, weights, _ = problem
        with pytest.raises(ConfigurationError):
            ShardGroup.build(
                centers, weights, g=2, backends="torch:cpu",
                transport="process",
            )

    def test_available_transports_lists_thread(self):
        names = available_transports()
        assert "thread" in names
        if process_transport_available():
            assert "process" in names
