"""Cross-transport conformance suite for the shard transport layer.

One parameterized suite pins every *registered* transport (thread,
process, torchdist — anything filed via
:func:`repro.shard.transport.register_transport` joins the list
automatically at collection) to the same contract:

- **bitwise parity across transports**: for a fixed shard plan, weights,
  histories and sharded-op results are *bit-identical* between the
  thread transport and every other transport — every transport runs the
  same task functions on the same shard slices, and a transport moves
  bytes, it never re-computes.  Transports whose collective runs on an
  external fabric (torchdist's ``dist.all_reduce``) declare via
  ``exact_collective_max_g`` the shard count up to which the fabric's
  reduction is provably bit-identical to the host-side shard-order sum
  (2 — IEEE addition of one operand pair is commutative); bitwise cases
  beyond that bound skip with a reason;
- **parity with the unsharded trainer**: exact (bitwise) at ``g = 1``;
  for ``g > 1`` within 1e-6 of scale (the per-shard partial sums
  necessarily associate the floating-point reduction differently than
  one full GEMM);
- **exact aggregate op counts** vs the unsharded trainer for every
  compute category, with communication metered separately under
  ``"allreduce"`` (zero at ``g = 1``);
- **asynchronous mirror-back**: the process-architecture row mirror is a
  direct shared-memory write — visible to the workers, no task, no
  barrier — pinned by exact per-worker RPC counts for both the
  pipelined and the serial (form+contract batched into one round-trip)
  iteration;
- **real collective**: the torchdist transport's all-reduce rides one
  task per rank through ``dist.all_reduce`` and meters the same
  shape-derived ``(g - 1) * payload`` charge as the host-side sum;
- seeded runs are reproducible per transport.

``REPRO_SHARD_G`` restricts the shard counts (single value or comma
list, e.g. ``REPRO_SHARD_G=2`` or ``REPRO_SHARD_G=1,2,4``);
``REPRO_SHARD_TRANSPORT`` restricts the transports — both are how the
CI matrix splits the suite.  Cases for transports that are registered
but unavailable here (no fork-safe shared memory, no torch) *skip with
a reason* rather than disappearing.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.eigenpro2 import EigenPro2
from repro.device.presets import titan_xp
from repro.exceptions import ConfigurationError
from repro.instrument import meter_scope
from repro.kernels import GaussianKernel, LaplacianKernel
from repro.shard import (
    ShardGroup,
    ShardedEigenPro2,
    available_transports,
    process_transport_available,
    registered_transports,
    resolve_transport,
    sharded_kernel_matvec,
    sharded_predict,
    transport_available,
)

_ENV_G = os.environ.get("REPRO_SHARD_G")
G_VALUES = (
    [int(g) for g in _ENV_G.split(",")] if _ENV_G else [1, 2, 4]
)
_ENV_T = os.environ.get("REPRO_SHARD_TRANSPORT")
#: Registry-discovered: registering a transport parameterizes this suite.
ALL_TRANSPORTS = registered_transports()
TRANSPORTS = (
    [t for t in ALL_TRANSPORTS if t in _ENV_T.split(",")]
    if _ENV_T
    else ALL_TRANSPORTS
)


def _transport_param(t: str) -> object:
    return pytest.param(
        t,
        marks=pytest.mark.skipif(
            not transport_available(t),
            reason=f"transport {t!r} is not available on this host",
        ),
    )


shard_counts = pytest.mark.parametrize("g", G_VALUES)
transports = pytest.mark.parametrize(
    "transport", [_transport_param(t) for t in TRANSPORTS]
)
#: The thread transport is the bitwise reference; these are the
#: transports compared against it.
nonthread_transports = pytest.mark.parametrize(
    "transport", [_transport_param(t) for t in TRANSPORTS if t != "thread"]
)

needs_process = pytest.mark.skipif(
    not process_transport_available(),
    reason="platform lacks fork-safe shared memory",
)
needs_torchdist = pytest.mark.skipif(
    not transport_available("torchdist"),
    reason="torch is not installed (transport 'torchdist' unavailable)",
)


def _skip_beyond_exact_collective(transport: str, g: int) -> None:
    limit = resolve_transport(transport).exact_collective_max_g
    if limit is not None and g > limit:
        pytest.skip(
            f"transport {transport!r} guarantees a bitwise collective "
            f"only up to g={limit} (fabric chooses the association "
            f"order beyond that)"
        )

KW = dict(s=80, batch_size=32, seed=0, damping=0.9)
BANDWIDTH = 2.5


# Module-level task (picklable) used by the mirror write-through test.
def _read_weight_rows_task(worker, local_idx):
    return np.asarray(worker.weights[local_idx]).copy()


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(13)
    centers = rng.standard_normal((211, 6))
    weights = rng.standard_normal((211, 3))
    x = rng.standard_normal((48, 6))
    return centers, weights, x


def _fit_sharded(ds, transport, g, epochs=2):
    trainer = ShardedEigenPro2(
        GaussianKernel(bandwidth=BANDWIDTH),
        n_shards=g,
        transport=transport,
        device=titan_xp(),
        **KW,
    )
    try:
        with meter_scope() as meter:
            trainer.fit(ds.x_train, ds.y_train, epochs=epochs)
        alpha = np.asarray(trainer._alpha).copy()
        history = trainer.history_.series("train_mse")
        params = trainer.params_
        step = trainer.step_size_
    finally:
        trainer.close()
    return alpha, history, meter.as_dict(), params, step


@pytest.fixture(scope="module")
def unsharded(small_dataset):
    with meter_scope() as meter:
        ref = EigenPro2(
            GaussianKernel(bandwidth=BANDWIDTH), device=titan_xp(), **KW
        )
        ref.fit(small_dataset.x_train, small_dataset.y_train, epochs=2)
    return ref, meter.as_dict()


class TestTrainerConformance:
    @shard_counts
    @nonthread_transports
    def test_transports_bitwise_identical(self, small_dataset, g, transport):
        """The tentpole invariant: every transport produces weights,
        histories and op counts bit-identical to the thread transport's
        (up to its declared exact-collective bound)."""
        _skip_beyond_exact_collective(transport, g)
        a_thread, h_thread, m_thread, p_thread, s_thread = _fit_sharded(
            small_dataset, "thread", g
        )
        a_other, h_other, m_other, p_other, s_other = _fit_sharded(
            small_dataset, transport, g
        )
        np.testing.assert_array_equal(a_other, a_thread)
        assert h_other == h_thread
        assert m_other == m_thread
        assert p_other == p_thread and s_other == s_thread

    @shard_counts
    @transports
    def test_matches_unsharded_trainer(self, small_dataset, unsharded, g, transport):
        ref, _ = unsharded
        alpha, history, _, params, step = _fit_sharded(
            small_dataset, transport, g
        )
        ref_alpha = np.asarray(ref._alpha)
        if g == 1:
            # One shard runs the very same arithmetic: exact.
            np.testing.assert_array_equal(alpha, ref_alpha)
        else:
            scale = max(float(np.abs(ref_alpha).max()), 1.0)
            np.testing.assert_allclose(
                alpha, ref_alpha, atol=1e-6 * scale, rtol=0
            )
        np.testing.assert_allclose(
            history, ref.history_.series("train_mse"), rtol=1e-6
        )
        # Selection (Steps 1-3) is identical: same device, same seed.
        assert params.q_adjusted == ref.params_.q_adjusted
        assert step == ref.step_size_

    @shard_counts
    @transports
    def test_aggregate_op_counts_exact(self, small_dataset, unsharded, g, transport):
        _, ref_counts = unsharded
        _, _, counts, _, _ = _fit_sharded(small_dataset, transport, g)
        for category, ops in ref_counts.items():
            assert counts.get(category) == ops, category
        # Communication is metered separately and vanishes at g=1.
        extra = set(counts) - set(ref_counts)
        assert extra <= {"allreduce"}
        if g == 1:
            assert counts.get("allreduce", 0) == 0
        else:
            assert counts.get("allreduce", 0) > 0

    @transports
    def test_seeded_runs_reproducible(self, small_dataset, transport):
        a1, h1, m1, _, _ = _fit_sharded(small_dataset, transport, 2, epochs=1)
        a2, h2, m2, _, _ = _fit_sharded(small_dataset, transport, 2, epochs=1)
        np.testing.assert_array_equal(a1, a2)
        assert h1 == h2 and m1 == m2


class TestShardedOpsConformance:
    @shard_counts
    @nonthread_transports
    def test_matvec_bitwise_across_transports(self, problem, g, transport):
        _skip_beyond_exact_collective(transport, g)
        centers, weights, x = problem
        kernel = LaplacianKernel(bandwidth=2.0)
        results = {}
        for name in ("thread", transport):
            with ShardGroup.build(
                centers, weights, g=g, kernel=kernel, transport=name
            ) as group:
                results[name] = np.asarray(
                    sharded_kernel_matvec(kernel, x, group)
                )
        np.testing.assert_array_equal(results[transport], results["thread"])

    @shard_counts
    @transports
    def test_predict_and_meter(self, problem, g, transport):
        from repro.kernels.ops import kernel_matvec

        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        with meter_scope() as ref_meter:
            ref = kernel_matvec(kernel, x, centers, weights)
        with ShardGroup.build(
            centers, weights, g=g, kernel=kernel, transport=transport
        ) as group:
            with meter_scope() as meter:
                got = sharded_predict(group, x)
            per_shard = group.op_counts()
        np.testing.assert_allclose(got, ref, atol=1e-6, rtol=0)
        for category in ("kernel_eval", "gemm"):
            assert meter.counts[category].ops == ref_meter.counts[category].ops
            assert per_shard[category] == ref_meter.counts[category].ops
        allreduce = meter.as_dict().get("allreduce", 0)
        if g == 1:
            assert allreduce == 0
        else:
            assert allreduce == (g - 1) * x.shape[0] * weights.shape[1]


class TestProcessMirrorBack:
    """The async mirror contract: a direct shared-memory write, visible
    to the workers, riding no task channel."""

    @needs_process
    def test_write_through_without_rpc(self, problem):
        centers, weights, _ = problem
        with ShardGroup.build(
            centers, weights, g=2, transport="process"
        ) as group:
            before = [ex.rpc_count for ex in group.executors]
            idx = np.array([0, 5, centers.shape[0] - 1])
            rows = np.full((3, weights.shape[1]), 42.0)
            assert group.mirror_rows(idx, rows) is None  # no PendingMap
            # No task was queued for the mirror...
            assert [ex.rpc_count for ex in group.executors] == before
            # ...yet the workers observe the new rows.
            parts = group.plan.localize(idx)
            for shard_id, (positions, local) in enumerate(parts):
                if not positions.size:
                    continue
                seen = group.transport.submit(
                    shard_id, _read_weight_rows_task, local
                ).result()
                np.testing.assert_array_equal(seen, rows[positions])

    @needs_process
    def test_trainer_never_queues_mirror_tasks(self, small_dataset):
        """End to end: a pipelined process-transport fit performs no
        per-update mirror barrier — its RPC traffic is exactly the
        form/contract (+ state setup and teardown) tasks."""
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=BANDWIDTH),
            n_shards=2,
            transport="process",
            device=titan_xp(),
            **KW,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            assert trainer._pending_mirror is None
            iterations = trainer.history_.final.iterations
            # Tasks per worker: one batched state setup, form + contract
            # per iteration (2 each), one workspace drain.
            expected = 1 + 2 * iterations + 1
            for ex in trainer.shard_group_.executors:
                assert ex.rpc_count == expected
        finally:
            trainer.close()

    @needs_process
    def test_serial_fit_one_roundtrip_per_step(self, small_dataset):
        """With the pipeline off, form + contract are batched into a
        single task (`_forward_task`) — exactly one RPC round-trip per
        iteration per worker, plus the batched setup and the drain."""
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=BANDWIDTH),
            n_shards=2,
            transport="process",
            device=titan_xp(),
            pipeline=False,
            **KW,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            iterations = trainer.history_.final.iterations
            expected = 1 + iterations + 1
            for ex in trainer.shard_group_.executors:
                assert ex.rpc_count == expected
        finally:
            trainer.close()


class TestTorchDistCollective:
    """The torchdist-specific contract: the all-reduce is a *real*
    ``dist.all_reduce`` riding one task per rank, metered with the same
    shape-derived charge as the host-side sum, short-circuiting at a
    single rank."""

    @needs_torchdist
    def test_allreduce_is_real_collective(self, problem):
        centers, weights, _ = problem
        rng = np.random.default_rng(7)
        a = rng.standard_normal((12, 3))
        b = rng.standard_normal((12, 3))
        with ShardGroup.build(
            centers, weights, g=2, transport="torchdist"
        ) as group:
            before = [ex.rpc_count for ex in group.executors]
            with meter_scope() as meter:
                out = np.asarray(group.allreduce([a, b]))
            # The collective rode the task channel: one RPC per rank.
            assert [ex.rpc_count for ex in group.executors] == [
                n + 1 for n in before
            ]
        # Bitwise equal to the host shard-order sum at g = 2 (IEEE
        # commutativity), with the identical "allreduce" charge.
        np.testing.assert_array_equal(out, a + b)
        assert meter.as_dict().get("allreduce", 0) == a.size

    @needs_torchdist
    def test_single_rank_short_circuits(self, problem):
        centers, weights, _ = problem
        a = np.arange(12.0).reshape(4, 3)
        with ShardGroup.build(
            centers, weights, g=1, transport="torchdist"
        ) as group:
            before = [ex.rpc_count for ex in group.executors]
            with meter_scope() as meter:
                out = np.asarray(group.allreduce([a]))
            assert [ex.rpc_count for ex in group.executors] == before
        np.testing.assert_array_equal(out, a)
        assert meter.as_dict().get("allreduce", 0) == 0

    @needs_torchdist
    def test_trainer_rpc_accounting(self, small_dataset):
        """A pipelined torchdist fit's per-worker RPC traffic is exactly
        setup + (form, fused contract+all-reduce) per iteration + drain:
        the collective rides *inside* the contraction task
        (`_fused_collective_task`), so each step costs two round-trips,
        not three — and mirror-back stays a direct shared-memory write,
        never a task."""
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=BANDWIDTH),
            n_shards=2,
            transport="torchdist",
            device=titan_xp(),
            **KW,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            assert trainer._pending_mirror is None
            iterations = trainer.history_.final.iterations
            expected = 1 + 2 * iterations + 1
            for ex in trainer.shard_group_.executors:
                assert ex.rpc_count == expected
        finally:
            trainer.close()

    @needs_torchdist
    def test_serial_fit_single_roundtrip_per_step(self, small_dataset):
        """With the pipeline off, the whole step — form, contract *and*
        the dist.all_reduce — is one fused task per rank: exactly one
        RPC round-trip per iteration per worker, down from two."""
        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=BANDWIDTH),
            n_shards=2,
            transport="torchdist",
            device=titan_xp(),
            pipeline=False,
            **KW,
        )
        try:
            trainer.fit(small_dataset.x_train, small_dataset.y_train, epochs=1)
            iterations = trainer.history_.final.iterations
            expected = 1 + iterations + 1
            for ex in trainer.shard_group_.executors:
                assert ex.rpc_count == expected
        finally:
            trainer.close()


class TestTransportSelection:
    def test_unknown_transport_rejected(self, problem):
        centers, weights, _ = problem
        with pytest.raises(ConfigurationError, match="registered"):
            ShardGroup.build(centers, weights, g=2, transport="nccl")

    @needs_process
    def test_process_rejects_device_backends(self, problem):
        centers, weights, _ = problem
        with pytest.raises(ConfigurationError):
            ShardGroup.build(
                centers, weights, g=2, backends="torch:cpu",
                transport="process",
            )

    def test_available_transports_lists_thread(self):
        names = available_transports()
        assert "thread" in names
        if process_transport_available():
            assert "process" in names

    def test_registered_transports_include_builtins(self):
        names = registered_transports()
        assert names[:3] == ["thread", "process", "torchdist"]
        # Registration never requires availability; usability filtering
        # happens in available_transports().
        assert set(available_transports()) <= set(names)

    def test_torchdist_unavailable_reported(self):
        """Without torch the transport stays *registered* (so it is
        listed, and selecting it errors helpfully) but not available."""
        if transport_available("torchdist"):
            pytest.skip("torch installed: unavailability path not testable")
        assert "torchdist" in registered_transports()
        assert "torchdist" not in available_transports()
        with pytest.raises(ConfigurationError, match="torch"):
            ShardGroup.build(
                np.zeros((4, 2)), g=2, transport="torchdist"
            )


class TestAllreduceDtypePromotion:
    """allreduce_sum must accumulate at the *joint* dtype of its
    partials: summing in-place into the first partial's dtype would
    silently downcast any higher-precision partial appearing later in
    shard order."""

    def test_mixed_dtype_partials_keep_float64(self):
        from repro.shard import allreduce_sum

        f32 = np.full((3, 2), 0.1, dtype=np.float32)
        f64 = np.full((3, 2), 1e-12, dtype=np.float64)
        out = np.asarray(allreduce_sum([f32, f64]))
        assert out.dtype == np.float64
        # Bitwise parity with the float64 reference sum: the 1e-12 term
        # would vanish entirely under a float32 accumulator.
        np.testing.assert_array_equal(out, f32.astype(np.float64) + f64)

    def test_promotion_is_order_independent(self):
        from repro.shard import allreduce_sum

        rng = np.random.default_rng(7)
        f32 = rng.standard_normal((4, 3)).astype(np.float32)
        f64 = rng.standard_normal((4, 3))
        a = np.asarray(allreduce_sum([f32, f64]))
        b = np.asarray(allreduce_sum([f64, f32]))
        assert a.dtype == b.dtype == np.float64
        np.testing.assert_allclose(a, b, rtol=0, atol=0)

    def test_same_dtype_unchanged(self):
        from repro.shard import allreduce_sum

        parts = [np.ones((2, 2), dtype=np.float32) for _ in range(3)]
        out = np.asarray(allreduce_sum(parts))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, 3.0 * parts[0])


class TestMixedPrecisionConformance:
    """``use_precision("mixed")`` across the sharded stack: shards form
    kernel blocks and GEMMs at float32, the collective accumulates the
    partials at float64 (host combine and torchdist fabric alike), and the
    master weights stay float64 end to end."""

    def test_mixed_allreduce_accumulates_float64(self):
        from repro.config import use_precision
        from repro.shard import allreduce_sum

        parts = [np.full((3,), 0.1, dtype=np.float32) for _ in range(2)]
        out32 = np.asarray(allreduce_sum(parts))
        assert out32.dtype == np.float32
        with use_precision("mixed"):
            out = np.asarray(allreduce_sum(parts))
        assert out.dtype == np.float64
        np.testing.assert_array_equal(
            out, parts[0].astype(np.float64) + parts[1].astype(np.float64)
        )

    @pytest.mark.parametrize("g", [1, 2])
    @transports
    def test_mixed_fit_matches_unsharded_mixed(
        self, small_dataset, g, transport
    ):
        from repro.config import use_precision

        _skip_beyond_exact_collective(transport, g)
        with use_precision("mixed"):
            ref = EigenPro2(
                GaussianKernel(bandwidth=BANDWIDTH), device=titan_xp(), **KW
            )
            ref.fit(small_dataset.x_train, small_dataset.y_train, epochs=2)
            alpha, history, counts, params, step = _fit_sharded(
                small_dataset, transport, g
            )
        ref_alpha = np.asarray(ref._alpha)
        assert ref_alpha.dtype == np.float64
        assert alpha.dtype == np.float64
        assert params.q_adjusted == ref.params_.q_adjusted
        assert step == ref.step_size_
        if g == 1:
            # One shard runs the very same arithmetic: exact.
            np.testing.assert_array_equal(alpha, ref_alpha)
        else:
            # Resharding reassociates float32 partial sums; the float64
            # accumulator keeps the divergence at float32 scale.
            scale = max(float(np.abs(ref_alpha).max()), 1.0)
            np.testing.assert_allclose(
                alpha, ref_alpha, atol=1e-3 * scale, rtol=0
            )
        np.testing.assert_allclose(
            history, ref.history_.series("train_mse"), rtol=1e-3
        )

    @transports
    def test_mixed_op_counts_are_shape_derived(
        self, small_dataset, unsharded, transport
    ):
        """Op counts never depend on the precision tier: the mixed sharded
        fit reports the same compute categories as the float64 unsharded
        reference (communication metered separately)."""
        from repro.config import use_precision

        _, ref_counts = unsharded
        with use_precision("mixed"):
            _, _, counts, _, _ = _fit_sharded(small_dataset, transport, 2)
        for category, ops in ref_counts.items():
            assert counts.get(category) == ops, category
        assert set(counts) - set(ref_counts) <= {"allreduce"}


class TestPendingMapPartialFailure:
    """PendingMap.result() must drain *every* future even when some
    fail: op-count deltas from the shards that completed are relayed
    (once) before the first error is raised, and repeated calls re-raise
    that error instead of re-consuming half-drained futures."""

    @staticmethod
    def _mixed_futures():
        from concurrent.futures import Future

        f0, f1, f2 = Future(), Future(), Future()
        f0.set_result(("r0", {"gemm": 5}))
        f1.set_exception(ValueError("shard 1 task failed"))
        f2.set_result(("r2", {"gemm": 7, "kernel_eval": 11}))
        return [f0, f1, f2]

    def test_relays_completed_deltas_before_raising(self):
        from repro.instrument import OpMeter
        from repro.shard import PendingMap

        pending = PendingMap(self._mixed_futures())
        meter = OpMeter()
        with meter_scope(meter):
            with pytest.raises(ValueError, match="shard 1"):
                pending.result()
        assert meter.total("gemm") == 12
        assert meter.total("kernel_eval") == 11

    def test_repeat_result_reraises_without_double_relay(self):
        from repro.instrument import OpMeter
        from repro.shard import PendingMap

        pending = PendingMap(self._mixed_futures())
        meter = OpMeter()
        with meter_scope(meter):
            with pytest.raises(ValueError, match="shard 1"):
                pending.result()
            with pytest.raises(ValueError, match="shard 1"):
                pending.result()
        assert meter.total("gemm") == 12  # relayed exactly once

    def test_first_error_in_shard_order_wins(self):
        from concurrent.futures import Future
        from repro.shard import PendingMap

        futures = [Future() for _ in range(3)]
        futures[0].set_result(("r0", {}))
        futures[1].set_exception(ValueError("first failure"))
        futures[2].set_exception(RuntimeError("second failure"))
        with pytest.raises(ValueError, match="first failure"):
            PendingMap(futures).result()

    def test_success_path_is_single_shot(self):
        from concurrent.futures import Future
        from repro.instrument import OpMeter
        from repro.shard import PendingMap

        futures = [Future() for _ in range(2)]
        futures[0].set_result(("a", {"gemm": 2}))
        futures[1].set_result(("b", {"gemm": 3}))
        pending = PendingMap(futures)
        meter = OpMeter()
        with meter_scope(meter):
            assert pending.result() == ["a", "b"]
            assert pending.result() == ["a", "b"]
        assert meter.total("gemm") == 5  # relayed exactly once


class TestLifecycleUnderServing:
    """The serving layer's lifecycle contract, pinned per transport:
    ``close()`` is idempotent, and *any* submission after close raises a
    clean :class:`~repro.exceptions.ShardError` — never a hang, an
    ``AttributeError`` from a dropped pool, or a write into an unlinked
    shared-memory segment."""

    @transports
    def test_double_close_is_noop(self, problem, transport):
        centers, weights, _ = problem
        group = ShardGroup.build(
            centers, weights, g=2,
            kernel=GaussianKernel(bandwidth=2.0), transport=transport,
        )
        assert not group.closed
        group.close()
        assert group.closed
        group.close()  # must not raise, hang, or double-release
        assert group.closed

    @transports
    def test_context_manager_closes(self, problem, transport):
        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        with ShardGroup.build(
            centers, weights, g=2, kernel=kernel, transport=transport
        ) as group:
            sharded_predict(group, x[:4])
            assert not group.closed
        assert group.closed

    @transports
    def test_submit_after_close_raises_shard_error(self, problem, transport):
        from repro.exceptions import ShardError

        centers, weights, x = problem
        kernel = GaussianKernel(bandwidth=2.0)
        group = ShardGroup.build(
            centers, weights, g=2, kernel=kernel, transport=transport
        )
        group.close()
        with pytest.raises(ShardError, match="closed"):
            sharded_predict(group, x[:4])
        with pytest.raises(ShardError, match="closed"):
            group.map_async(_read_weight_rows_task, np.array([0]))

    @transports
    def test_weight_access_after_close_raises_shard_error(
        self, problem, transport
    ):
        from repro.exceptions import ShardError

        centers, weights, _ = problem
        group = ShardGroup.build(
            centers, weights, g=2,
            kernel=GaussianKernel(bandwidth=2.0), transport=transport,
        )
        group.close()
        with pytest.raises(ShardError, match="closed"):
            group.gather_weights()


class TestZeroRowBatches:
    """b = 0 shape contract: an empty dispatcher tick (or any empty
    evaluation batch) yields a well-formed ``(0, l)`` result on every
    transport, bitwise-consistent with the unsharded path."""

    @shard_counts
    @transports
    def test_sharded_predict_zero_rows(self, problem, g, transport):
        from repro.kernels.ops import kernel_matvec

        centers, weights, _ = problem
        kernel = GaussianKernel(bandwidth=2.0)
        x0 = np.empty((0, centers.shape[1]))
        ref = np.asarray(kernel_matvec(kernel, x0, centers, weights))
        with ShardGroup.build(
            centers, weights, g=g, kernel=kernel, transport=transport
        ) as group:
            got = np.asarray(sharded_predict(group, x0))
            mv = np.asarray(sharded_kernel_matvec(kernel, x0, group))
        assert got.shape == (0, weights.shape[1])
        assert mv.shape == (0, weights.shape[1])
        assert got.dtype == ref.dtype
        np.testing.assert_array_equal(got, ref)

    @shard_counts
    @transports
    def test_zero_rows_1d_weights(self, problem, g, transport):
        centers, _, _ = problem
        weights_1d = np.linspace(-1.0, 1.0, centers.shape[0])
        kernel = GaussianKernel(bandwidth=2.0)
        x0 = np.empty((0, centers.shape[1]))
        with ShardGroup.build(
            centers, weights_1d, g=g, kernel=kernel, transport=transport
        ) as group:
            got = np.asarray(sharded_predict(group, x0))
        assert got.shape == (0,)
