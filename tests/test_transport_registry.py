"""The shard-transport registry: one discovery point for every consumer.

``ShardGroup.build(transport=...)``, ``ShardedEigenPro2``,
``run_shard_validation``, the bench CLI and the conformance suite's
parametrization all resolve transports through
:mod:`repro.shard.transport`'s registry — so registering a transport
class is sufficient for the whole stack (including the test matrix) to
see it, and a typo'd name fails with the registered names spelled out.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.shard import (
    ShardGroup,
    ShardedEigenPro2,
    ThreadTransport,
    available_transports,
    register_transport,
    registered_transports,
    resolve_transport,
    transport_available,
    unregister_transport,
)
from repro.shard.transport import ShardTransport


class DummyTransport(ThreadTransport):
    """A registerable transport: thread semantics under a new name."""

    name = "dummy-registry-test"


class UnavailableTransport(ThreadTransport):
    name = "unavailable-registry-test"

    @classmethod
    def is_available(cls) -> bool:
        return False


@pytest.fixture
def registered_dummy():
    register_transport(DummyTransport)
    try:
        yield DummyTransport
    finally:
        unregister_transport(DummyTransport.name)


class TestRegistration:
    def test_registered_transport_is_discoverable(self, registered_dummy):
        assert DummyTransport.name in registered_transports()
        assert DummyTransport.name in available_transports()
        assert transport_available(DummyTransport.name)
        assert resolve_transport(DummyTransport.name) is DummyTransport

    def test_registered_transport_builds_groups(self, registered_dummy):
        rng = np.random.default_rng(0)
        centers = rng.standard_normal((20, 3))
        weights = rng.standard_normal((20, 2))
        with ShardGroup.build(
            centers, weights, g=2, transport=DummyTransport.name
        ) as group:
            assert type(group.transport) is DummyTransport
            assert group.g == 2

    def test_registered_transport_reaches_trainer(self, registered_dummy):
        from repro.kernels import GaussianKernel

        trainer = ShardedEigenPro2(
            GaussianKernel(bandwidth=2.0),
            n_shards=2,
            transport=DummyTransport.name,
        )
        trainer.close()

    def test_registration_parameterizes_conformance_suite(
        self, registered_dummy
    ):
        """The conformance suite derives its transport list from the
        registry at import: with the dummy registered, a (re)import sees
        it — no suite edit needed for a new transport."""
        import test_shard_transport_conformance as conformance

        reloaded = importlib.reload(conformance)
        try:
            assert DummyTransport.name in reloaded.ALL_TRANSPORTS
        finally:
            unregister_transport(DummyTransport.name)
            importlib.reload(conformance)
            register_transport(DummyTransport)  # fixture unregisters

    def test_unavailable_transport_listed_but_filtered(self):
        register_transport(UnavailableTransport)
        try:
            assert UnavailableTransport.name in registered_transports()
            assert UnavailableTransport.name not in available_transports()
            assert not transport_available(UnavailableTransport.name)
        finally:
            unregister_transport(UnavailableTransport.name)

    def test_duplicate_name_needs_replace(self, registered_dummy):
        class Imposter(ThreadTransport):
            name = DummyTransport.name

        with pytest.raises(ConfigurationError, match="already registered"):
            register_transport(Imposter)
        # Same class again is an idempotent no-op...
        register_transport(DummyTransport)
        # ...and replace=True hands the name over.
        register_transport(Imposter, replace=True)
        assert resolve_transport(DummyTransport.name) is Imposter
        register_transport(DummyTransport, replace=True)

    def test_rejects_non_transport_and_abstract_names(self):
        with pytest.raises(ConfigurationError, match="subclass"):
            register_transport(object)  # type: ignore[arg-type]

        class Nameless(ThreadTransport):
            name = ShardTransport.name

        with pytest.raises(ConfigurationError, match="concrete"):
            register_transport(Nameless)


class TestResolutionErrors:
    def test_bogus_name_lists_registered(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ConfigurationError) as err:
            ShardGroup.build(
                rng.standard_normal((8, 2)), g=2, transport="bogus"
            )
        message = str(err.value)
        assert "bogus" in message
        for name in registered_transports():
            assert name in message
        assert "register_transport" in message

    def test_trainer_rejects_bogus_name_at_construction(self):
        from repro.kernels import GaussianKernel

        with pytest.raises(ConfigurationError, match="thread"):
            ShardedEigenPro2(
                GaussianKernel(bandwidth=2.0), transport="bogus"
            )

    def test_subclass_passes_through_unregistered(self):
        class Anonymous(ThreadTransport):
            name = "never-registered"

        assert resolve_transport(Anonymous) is Anonymous

    def test_unregister_unknown_is_noop(self):
        unregister_transport("no-such-transport")
